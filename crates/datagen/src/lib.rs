//! # proteus-datagen
//!
//! Deterministic dataset generators for the reproduction's experiments:
//!
//! * [`tpch`] — the TPC-H subset the paper uses in §7.1 (`lineitem` and
//!   `orders`), at a configurable scale factor, with shuffled row order
//!   ("We shuffle each file's contents to avoid potential optimizations that
//!   exploit interesting orders").
//! * [`symantec`] — a synthetic stand-in for the Symantec spam-trap silo of
//!   §7.2: JSON spam objects with arbitrary field order, a CSV file of data
//!   mining (classification) output and a binary history table, plus the
//!   50-query workload structure.
//! * [`writers`] — CSV / JSON / denormalized-JSON / binary row / binary
//!   column writers so each engine consumes the same data in its native
//!   format.

pub mod symantec;
pub mod tpch;
pub mod writers;

pub use tpch::{TpchGenerator, TpchScale};
pub use writers::{value_to_json, write_column_table, write_csv, write_json, write_row_table};
