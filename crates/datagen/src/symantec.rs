//! Synthetic stand-in for the Symantec spam-analysis workload (§7.2).
//!
//! The real input is proprietary; this generator reproduces its *shape*:
//!
//! * a JSON silo of spam-email objects (mail body language, origin IP and
//!   country, responsible bot, subject, nested per-classifier label arrays)
//!   with arbitrary field order across objects;
//! * a CSV file produced by the data-mining workflow (mail id, assigned
//!   classes, scores);
//! * a binary history table accumulated in the RDBMS (mail id, first-seen
//!   date, occurrence count, aggregate score);
//! * the 50-query workload of Figure 14, grouped by the dataset combination
//!   each query touches (BIN, CSV, JSON, BIN+CSV, BIN+JSON, CSV+JSON,
//!   BIN+CSV+JSON).

use proteus_algebra::{DataType, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which datasets a workload query touches (the groups of Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryGroup {
    /// Binary history table only (Q1–Q8).
    Bin,
    /// CSV classification output only (Q9–Q15).
    Csv,
    /// JSON spam objects only (Q16–Q25).
    Json,
    /// Binary ⋈ CSV (Q26–Q30).
    BinCsv,
    /// Binary ⋈ JSON (Q31–Q35).
    BinJson,
    /// CSV ⋈ JSON (Q36–Q40).
    CsvJson,
    /// All three datasets (Q41–Q50).
    BinCsvJson,
}

impl QueryGroup {
    /// The group of workload query `q` (1-based, 1..=50), following the
    /// paper's partitioning of Figure 14.
    pub fn of_query(q: usize) -> QueryGroup {
        match q {
            1..=8 => QueryGroup::Bin,
            9..=15 => QueryGroup::Csv,
            16..=25 => QueryGroup::Json,
            26..=30 => QueryGroup::BinCsv,
            31..=35 => QueryGroup::BinJson,
            36..=40 => QueryGroup::CsvJson,
            _ => QueryGroup::BinCsvJson,
        }
    }

    /// Short label used in the Figure 14 output.
    pub fn label(&self) -> &'static str {
        match self {
            QueryGroup::Bin => "BIN",
            QueryGroup::Csv => "CSV",
            QueryGroup::Json => "JSON",
            QueryGroup::BinCsv => "BIN+CSV",
            QueryGroup::BinJson => "BIN+JSON",
            QueryGroup::CsvJson => "CSV+JSON",
            QueryGroup::BinCsvJson => "BIN+CSV+JSON",
        }
    }
}

/// Sizes of the three silos.
#[derive(Debug, Clone, Copy)]
pub struct SymantecScale {
    /// Number of JSON spam objects.
    pub spam_objects: usize,
    /// Number of CSV classification rows.
    pub classification_rows: usize,
    /// Number of binary history rows.
    pub history_rows: usize,
}

impl SymantecScale {
    /// A small default suitable for tests and CI benchmark runs. The paper's
    /// silo holds 28 M / 400 M / 500 M entries; the ratios (≈ 1 : 14 : 18)
    /// are preserved.
    pub fn small() -> SymantecScale {
        SymantecScale {
            spam_objects: 1_000,
            classification_rows: 14_000,
            history_rows: 18_000,
        }
    }

    /// Scales the small configuration by a factor (and by `PROTEUS_SF`).
    pub fn scaled(factor: f64) -> SymantecScale {
        let env = std::env::var("PROTEUS_SF")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0);
        let f = (factor * env).max(0.01);
        let small = Self::small();
        SymantecScale {
            spam_objects: ((small.spam_objects as f64) * f) as usize,
            classification_rows: ((small.classification_rows as f64) * f) as usize,
            history_rows: ((small.history_rows as f64) * f) as usize,
        }
    }
}

const LANGUAGES: &[&str] = &["en", "ru", "zh", "es", "de", "pt", "fr"];
const COUNTRIES: &[&str] = &["us", "ru", "cn", "br", "in", "de", "ng", "vn"];
const BOTS: &[&str] = &[
    "rustock", "grum", "cutwail", "kelihos", "waledac", "unknown",
];
const CLASSIFIERS: &[&str] = &["campaign", "phishing", "malware", "pharma"];

/// The Symantec-like silo generator.
pub struct SymantecGenerator {
    rng: StdRng,
    scale: SymantecScale,
}

impl SymantecGenerator {
    /// Creates a deterministic generator.
    pub fn new(scale: SymantecScale) -> SymantecGenerator {
        SymantecGenerator {
            rng: StdRng::seed_from_u64(0x5ca1_ab1e),
            scale,
        }
    }

    /// Schema of the CSV classification output.
    pub fn classification_schema() -> Schema {
        Schema::from_pairs(vec![
            ("mail_id", DataType::Int),
            ("campaign_class", DataType::Int),
            ("phishing_class", DataType::Int),
            ("malware_class", DataType::Int),
            ("score", DataType::Float),
            ("label", DataType::String),
        ])
    }

    /// Schema of the binary history table.
    pub fn history_schema() -> Schema {
        Schema::from_pairs(vec![
            ("mail_id", DataType::Int),
            ("first_seen", DataType::Int),
            ("occurrences", DataType::Int),
            ("total_score", DataType::Float),
            ("dominant_bot", DataType::String),
        ])
    }

    /// Generates the JSON spam objects.
    pub fn spam_objects(&mut self) -> Vec<Value> {
        (0..self.scale.spam_objects as i64)
            .map(|id| {
                let mut classes: Vec<Value> = Vec::new();
                for classifier in CLASSIFIERS {
                    if self.rng.gen_bool(0.6) {
                        classes.push(Value::record(vec![
                            ("classifier", Value::Str(classifier.to_string())),
                            ("label", Value::Int(self.rng.gen_range(0..20))),
                            ("confidence", Value::Float(self.rng.gen_range(0.0..1.0))),
                        ]));
                    }
                }
                Value::record(vec![
                    ("mail_id", Value::Int(id)),
                    (
                        "lang",
                        Value::Str(LANGUAGES[self.rng.gen_range(0..LANGUAGES.len())].to_string()),
                    ),
                    (
                        "origin",
                        Value::record(vec![
                            (
                                "ip",
                                Value::Str(format!(
                                    "{}.{}.{}.{}",
                                    self.rng.gen_range(1..255),
                                    self.rng.gen_range(0..255),
                                    self.rng.gen_range(0..255),
                                    self.rng.gen_range(1..255)
                                )),
                            ),
                            (
                                "country",
                                Value::Str(
                                    COUNTRIES[self.rng.gen_range(0..COUNTRIES.len())].to_string(),
                                ),
                            ),
                        ]),
                    ),
                    (
                        "bot",
                        Value::Str(BOTS[self.rng.gen_range(0..BOTS.len())].to_string()),
                    ),
                    ("size_bytes", Value::Int(self.rng.gen_range(200..20_000))),
                    (
                        "subject",
                        Value::Str(format!(
                            "special offer number {}",
                            self.rng.gen_range(0..1_000)
                        )),
                    ),
                    ("classes", Value::List(classes)),
                ])
            })
            .collect()
    }

    /// Generates the CSV classification rows.
    pub fn classifications(&mut self) -> Vec<Value> {
        (0..self.scale.classification_rows as i64)
            .map(|row| {
                let mail_id = row % self.scale.spam_objects.max(1) as i64;
                Value::record(vec![
                    ("mail_id", Value::Int(mail_id)),
                    ("campaign_class", Value::Int(self.rng.gen_range(0..50))),
                    ("phishing_class", Value::Int(self.rng.gen_range(0..10))),
                    ("malware_class", Value::Int(self.rng.gen_range(0..5))),
                    ("score", Value::Float(self.rng.gen_range(0.0..100.0))),
                    (
                        "label",
                        Value::Str(format!(
                            "{}-{}",
                            CLASSIFIERS[self.rng.gen_range(0..CLASSIFIERS.len())],
                            self.rng.gen_range(0..100)
                        )),
                    ),
                ])
            })
            .collect()
    }

    /// Generates the binary history rows.
    pub fn history(&mut self) -> Vec<Value> {
        (0..self.scale.history_rows as i64)
            .map(|row| {
                let mail_id = row % (self.scale.spam_objects.max(1) as i64 * 2);
                Value::record(vec![
                    ("mail_id", Value::Int(mail_id)),
                    ("first_seen", Value::Int(self.rng.gen_range(10_000..12_000))),
                    ("occurrences", Value::Int(self.rng.gen_range(1..500))),
                    (
                        "total_score",
                        Value::Float(self.rng.gen_range(0.0..10_000.0)),
                    ),
                    (
                        "dominant_bot",
                        Value::Str(BOTS[self.rng.gen_range(0..BOTS.len())].to_string()),
                    ),
                ])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silo_sizes_follow_scale() {
        let scale = SymantecScale {
            spam_objects: 50,
            classification_rows: 700,
            history_rows: 900,
        };
        let mut generator = SymantecGenerator::new(scale);
        assert_eq!(generator.spam_objects().len(), 50);
        assert_eq!(generator.classifications().len(), 700);
        assert_eq!(generator.history().len(), 900);
    }

    #[test]
    fn spam_objects_have_nested_origin_and_class_arrays() {
        let mut generator = SymantecGenerator::new(SymantecScale {
            spam_objects: 20,
            classification_rows: 0,
            history_rows: 0,
        });
        let spam = generator.spam_objects();
        for obj in &spam {
            let rec = obj.as_record().unwrap();
            assert!(matches!(rec.get("origin"), Some(Value::Record(_))));
            assert!(matches!(rec.get("classes"), Some(Value::List(_))));
            let country = obj.navigate(&["origin".to_string(), "country".to_string()]);
            assert!(matches!(country, Value::Str(_)));
        }
    }

    #[test]
    fn classifications_reference_spam_mail_ids() {
        let scale = SymantecScale {
            spam_objects: 10,
            classification_rows: 40,
            history_rows: 0,
        };
        let mut generator = SymantecGenerator::new(scale);
        let rows = generator.classifications();
        assert!(rows.iter().all(|r| {
            let id = r
                .as_record()
                .unwrap()
                .get("mail_id")
                .unwrap()
                .as_int()
                .unwrap();
            (0..10).contains(&id)
        }));
    }

    #[test]
    fn query_groups_partition_the_50_queries() {
        assert_eq!(QueryGroup::of_query(1), QueryGroup::Bin);
        assert_eq!(QueryGroup::of_query(9), QueryGroup::Csv);
        assert_eq!(QueryGroup::of_query(16), QueryGroup::Json);
        assert_eq!(QueryGroup::of_query(26), QueryGroup::BinCsv);
        assert_eq!(QueryGroup::of_query(31), QueryGroup::BinJson);
        assert_eq!(QueryGroup::of_query(39), QueryGroup::CsvJson);
        assert_eq!(QueryGroup::of_query(50), QueryGroup::BinCsvJson);
        assert_eq!(QueryGroup::Bin.label(), "BIN");
    }

    #[test]
    fn scaled_sizes_preserve_ratios() {
        let scale = SymantecScale::scaled(0.1);
        assert!(scale.classification_rows > scale.spam_objects);
        assert!(scale.history_rows > scale.classification_rows);
    }
}
