//! TPC-H subset generator (`lineitem` + `orders`).
//!
//! The paper uses SF10 (60 M lineitems) for the JSON experiments and SF100
//! for the binary ones. The reproduction scales the same schema down: a
//! [`TpchScale`] of `1.0` produces 6 000 lineitems / 1 500 orders, so the
//! benchmarks default to laptop-friendly sizes while `PROTEUS_SF` can raise
//! them. Keys, value ranges and the lineitem-per-order fan-out follow the
//! TPC-H spec shape (1–7 lineitems per order, quantities 1–50, ...).

use proteus_algebra::{DataType, Schema, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Scale factor: 1.0 ≙ 6 000 lineitems / 1 500 orders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchScale(pub f64);

impl TpchScale {
    /// Number of orders at this scale.
    pub fn order_count(&self) -> usize {
        ((self.0 * 1_500.0).round() as usize).max(1)
    }

    /// Reads the scale from the `PROTEUS_SF` environment variable, falling
    /// back to the given default.
    pub fn from_env(default: f64) -> TpchScale {
        let sf = std::env::var("PROTEUS_SF")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(default);
        TpchScale(sf)
    }
}

/// The TPC-H subset generator.
pub struct TpchGenerator {
    rng: StdRng,
    scale: TpchScale,
}

impl TpchGenerator {
    /// Creates a generator with a fixed seed (fully deterministic output).
    pub fn new(scale: TpchScale) -> TpchGenerator {
        TpchGenerator {
            rng: StdRng::seed_from_u64(0x5eed_1234),
            scale,
        }
    }

    /// Schema of the generated `lineitem` table.
    pub fn lineitem_schema() -> Schema {
        Schema::from_pairs(vec![
            ("l_orderkey", DataType::Int),
            ("l_linenumber", DataType::Int),
            ("l_quantity", DataType::Float),
            ("l_extendedprice", DataType::Float),
            ("l_discount", DataType::Float),
            ("l_tax", DataType::Float),
            ("l_shipdate", DataType::Int),
            ("l_comment", DataType::String),
        ])
    }

    /// Schema of the generated `orders` table.
    pub fn orders_schema() -> Schema {
        Schema::from_pairs(vec![
            ("o_orderkey", DataType::Int),
            ("o_custkey", DataType::Int),
            ("o_totalprice", DataType::Float),
            ("o_orderdate", DataType::Int),
            ("o_comment", DataType::String),
        ])
    }

    /// Generates `orders` and `lineitem` rows (already shuffled).
    /// Lineitems reference existing order keys with a 1–7 fan-out.
    pub fn generate(&mut self) -> (Vec<Value>, Vec<Value>) {
        let order_count = self.scale.order_count();
        let mut orders = Vec::with_capacity(order_count);
        let mut lineitems = Vec::new();
        for orderkey in 0..order_count as i64 {
            let custkey = self.rng.gen_range(0..(order_count as i64 / 10).max(1));
            let orderdate = self.rng.gen_range(8_000..12_000);
            let line_count = self.rng.gen_range(1..=7);
            let mut total = 0.0;
            for linenumber in 1..=line_count {
                let quantity = self.rng.gen_range(1..=50) as f64;
                let price = quantity * self.rng.gen_range(900.0..1100.0);
                let discount = (self.rng.gen_range(0..=10) as f64) / 100.0;
                let tax = (self.rng.gen_range(0..=8) as f64) / 100.0;
                total += price * (1.0 - discount);
                lineitems.push(Value::record(vec![
                    ("l_orderkey", Value::Int(orderkey)),
                    ("l_linenumber", Value::Int(linenumber)),
                    ("l_quantity", Value::Float(quantity)),
                    (
                        "l_extendedprice",
                        Value::Float((price * 100.0).round() / 100.0),
                    ),
                    ("l_discount", Value::Float(discount)),
                    ("l_tax", Value::Float(tax)),
                    (
                        "l_shipdate",
                        Value::Int(orderdate + self.rng.gen_range(1..120)),
                    ),
                    (
                        "l_comment",
                        Value::Str(format!("lineitem {orderkey}-{linenumber} carefully packed")),
                    ),
                ]));
            }
            orders.push(Value::record(vec![
                ("o_orderkey", Value::Int(orderkey)),
                ("o_custkey", Value::Int(custkey)),
                (
                    "o_totalprice",
                    Value::Float((total * 100.0).round() / 100.0),
                ),
                ("o_orderdate", Value::Int(orderdate)),
                (
                    "o_comment",
                    Value::Str(format!("order {orderkey} pending review")),
                ),
            ]));
        }
        orders.shuffle(&mut self.rng);
        lineitems.shuffle(&mut self.rng);
        (orders, lineitems)
    }

    /// Builds the denormalized form used by the Figure 9 "Unnest" template:
    /// each order object embeds the array of its lineitems.
    pub fn denormalize(orders: &[Value], lineitems: &[Value]) -> Vec<Value> {
        let mut per_order: std::collections::HashMap<i64, Vec<Value>> =
            std::collections::HashMap::new();
        for li in lineitems {
            if let Ok(rec) = li.as_record() {
                if let Some(Value::Int(key)) = rec.get("l_orderkey") {
                    per_order.entry(*key).or_default().push(li.clone());
                }
            }
        }
        orders
            .iter()
            .map(|order| {
                let rec = order.as_record().unwrap();
                let key = rec
                    .get("o_orderkey")
                    .and_then(|v| v.as_int().ok())
                    .unwrap_or(0);
                let mut fields: Vec<(&str, Value)> =
                    rec.iter().map(|(n, v)| (n, v.clone())).collect::<Vec<_>>();
                fields.push((
                    "lineitems",
                    Value::List(per_order.remove(&key).unwrap_or_default()),
                ));
                Value::record(fields)
            })
            .collect()
    }

    /// The selectivity knob of §7.1: the literal `X` such that
    /// `l_orderkey < X` qualifies roughly `fraction` of the lineitems.
    pub fn orderkey_threshold(&self, fraction: f64) -> i64 {
        (self.scale.order_count() as f64 * fraction).round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_scaled() {
        let (o1, l1) = TpchGenerator::new(TpchScale(0.1)).generate();
        let (o2, l2) = TpchGenerator::new(TpchScale(0.1)).generate();
        assert_eq!(o1, o2);
        assert_eq!(l1, l2);
        assert_eq!(o1.len(), 150);
        assert!(l1.len() >= 150 && l1.len() <= 150 * 7);
    }

    #[test]
    fn lineitems_reference_existing_orders() {
        let (orders, lineitems) = TpchGenerator::new(TpchScale(0.05)).generate();
        let keys: std::collections::HashSet<i64> = orders
            .iter()
            .map(|o| {
                o.as_record()
                    .unwrap()
                    .get("o_orderkey")
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .collect();
        assert!(lineitems.iter().all(|l| {
            keys.contains(
                &l.as_record()
                    .unwrap()
                    .get("l_orderkey")
                    .unwrap()
                    .as_int()
                    .unwrap(),
            )
        }));
    }

    #[test]
    fn quantities_follow_tpch_ranges() {
        let (_, lineitems) = TpchGenerator::new(TpchScale(0.05)).generate();
        for li in &lineitems {
            let rec = li.as_record().unwrap();
            let qty = rec.get("l_quantity").unwrap().as_float().unwrap();
            assert!((1.0..=50.0).contains(&qty));
            let discount = rec.get("l_discount").unwrap().as_float().unwrap();
            assert!((0.0..=0.1).contains(&discount));
        }
    }

    #[test]
    fn denormalized_orders_embed_their_lineitems() {
        let (orders, lineitems) = TpchGenerator::new(TpchScale(0.02)).generate();
        let denorm = TpchGenerator::denormalize(&orders, &lineitems);
        assert_eq!(denorm.len(), orders.len());
        let embedded: usize = denorm
            .iter()
            .map(|o| {
                o.as_record()
                    .unwrap()
                    .get("lineitems")
                    .unwrap()
                    .as_list()
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(embedded, lineitems.len());
    }

    #[test]
    fn threshold_tracks_selectivity() {
        let generator = TpchGenerator::new(TpchScale(1.0));
        assert_eq!(generator.orderkey_threshold(0.5), 750);
        assert_eq!(generator.orderkey_threshold(1.0), 1500);
    }

    #[test]
    fn schemas_match_generated_fields() {
        let (orders, lineitems) = TpchGenerator::new(TpchScale(0.01)).generate();
        let o_names = TpchGenerator::orders_schema();
        let l_names = TpchGenerator::lineitem_schema();
        for field in o_names.names() {
            assert!(
                orders[0].as_record().unwrap().get(field).is_some(),
                "{field}"
            );
        }
        for field in l_names.names() {
            assert!(
                lineitems[0].as_record().unwrap().get(field).is_some(),
                "{field}"
            );
        }
    }
}
