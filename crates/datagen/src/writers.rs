//! Dataset writers: the same generated rows are written as CSV, JSON, binary
//! rows and binary columns so every engine and every experiment reads its
//! native representation of identical data.

use std::fs;
use std::path::Path;

use proteus_algebra::{Schema, Value};
use proteus_storage::{ColumnData, ColumnTable, RowTable};

/// Renders a value as JSON text.
pub fn value_to_json(value: &Value) -> String {
    match value {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Date(d) => d.to_string(),
        Value::Float(f) => {
            if f.fract() == 0.0 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Value::List(items) => {
            let rendered: Vec<String> = items.iter().map(value_to_json).collect();
            format!("[{}]", rendered.join(", "))
        }
        Value::Record(record) => {
            let rendered: Vec<String> = record
                .iter()
                .map(|(name, v)| format!("\"{name}\": {}", value_to_json(v)))
                .collect();
            format!("{{{}}}", rendered.join(", "))
        }
    }
}

/// Writes rows as newline-delimited JSON objects. When `shuffle_fields` is
/// set, each object's field order is rotated differently (the Symantec JSON
/// input has "arbitrary field order" and §7.1 stresses that no field-order
/// assumption is made).
pub fn write_json(
    path: impl AsRef<Path>,
    rows: &[Value],
    shuffle_fields: bool,
) -> std::io::Result<()> {
    let mut out = String::new();
    for (idx, row) in rows.iter().enumerate() {
        let rendered = if shuffle_fields {
            match row.as_record() {
                Ok(record) if record.len() > 1 => {
                    let fields: Vec<(&str, &Value)> = record.iter().collect();
                    let rotation = idx % fields.len();
                    let rotated: Vec<String> = (0..fields.len())
                        .map(|i| {
                            let (name, value) = fields[(i + rotation) % fields.len()];
                            format!("\"{name}\": {}", value_to_json(value))
                        })
                        .collect();
                    format!("{{{}}}", rotated.join(", "))
                }
                _ => value_to_json(row),
            }
        } else {
            value_to_json(row)
        };
        out.push_str(&rendered);
        out.push('\n');
    }
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

/// Writes rows as a delimited CSV file following the schema's field order.
pub fn write_csv(
    path: impl AsRef<Path>,
    rows: &[Value],
    schema: &Schema,
    delimiter: char,
) -> std::io::Result<()> {
    let mut out = String::new();
    for row in rows {
        let record = match row.as_record() {
            Ok(r) => r,
            Err(_) => continue,
        };
        let mut first = true;
        for field in schema.fields() {
            if !first {
                out.push(delimiter);
            }
            first = false;
            match record.get(&field.name) {
                Some(Value::Str(s)) => out.push_str(s),
                Some(Value::Null) | None => {}
                Some(Value::Float(f)) => out.push_str(&format!("{f}")),
                Some(other) => out.push_str(&other.to_string()),
            }
        }
        out.push('\n');
    }
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

/// Writes rows as a binary column-table directory.
pub fn write_column_table(
    dir: impl AsRef<Path>,
    rows: &[Value],
    schema: &Schema,
) -> proteus_storage::Result<ColumnTable> {
    let mut columns: Vec<(String, ColumnData)> = schema
        .fields()
        .iter()
        .map(|f| (f.name.clone(), ColumnData::empty_of(&f.data_type)))
        .collect();
    for row in rows {
        let record = row.as_record().map_err(|e| {
            proteus_storage::StorageError::TypeMismatch(format!("row is not a record: {e}"))
        })?;
        for ((name, column), field) in columns.iter_mut().zip(schema.fields()) {
            let value = record.get(name).cloned().unwrap_or(Value::Null);
            let coerced = if value.is_null() {
                match column {
                    ColumnData::Int(_) => Value::Int(0),
                    ColumnData::Float(_) => Value::Float(0.0),
                    ColumnData::Bool(_) => Value::Bool(false),
                    ColumnData::Str(_) => Value::Str(String::new()),
                }
            } else if matches!(field.data_type, proteus_algebra::DataType::String)
                && !matches!(value, Value::Str(_))
            {
                Value::Str(value.to_string())
            } else {
                value
            };
            column.push_value(&coerced)?;
        }
    }
    ColumnTable::write(dir, &columns)
}

/// Writes rows as a binary row file.
pub fn write_row_table(
    path: impl AsRef<Path>,
    rows: &[Value],
    schema: &Schema,
) -> proteus_storage::Result<RowTable> {
    RowTable::write(path, schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{TpchGenerator, TpchScale};
    use proteus_algebra::DataType;
    use proteus_plugins::InputPlugin;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("proteus_writer_tests").join(name);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn json_rendering_round_trips_through_the_plugin_parser() {
        let row = Value::record(vec![
            ("id", Value::Int(3)),
            ("name", Value::Str("a \"quoted\" name".into())),
            (
                "scores",
                Value::List(vec![Value::Float(1.5), Value::Int(2)]),
            ),
            ("nested", Value::record(vec![("x", Value::Bool(true))])),
            ("missing", Value::Null),
        ]);
        let text = value_to_json(&row);
        let parsed = proteus_plugins::json::parse_json_value(text.as_bytes()).unwrap();
        assert_eq!(
            parsed.as_record().unwrap().get("name"),
            Some(&Value::Str("a \"quoted\" name".into()))
        );
        assert_eq!(
            parsed
                .as_record()
                .unwrap()
                .get("nested")
                .unwrap()
                .navigate(&["x".to_string()]),
            Value::Bool(true)
        );
    }

    #[test]
    fn write_json_with_field_shuffle_parses_and_varies_order() {
        let dir = temp_dir("shuffle");
        let rows: Vec<Value> = (0..5)
            .map(|i| {
                Value::record(vec![
                    ("a", Value::Int(i)),
                    ("b", Value::Int(i * 2)),
                    ("c", Value::Str(format!("s{i}"))),
                ])
            })
            .collect();
        let path = dir.join("rows.json");
        write_json(&path, &rows, true).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let first_line = text.lines().next().unwrap();
        let second_line = text.lines().nth(1).unwrap();
        // Field order differs between consecutive objects.
        assert_ne!(
            first_line.find("\"a\"").unwrap() < first_line.find("\"b\"").unwrap(),
            second_line.find("\"a\"").unwrap() < second_line.find("\"b\"").unwrap()
        );
        let plugin =
            proteus_plugins::json::JsonPlugin::from_bytes("t", bytes::Bytes::from(text)).unwrap();
        assert_eq!(plugin.len(), 5);
    }

    #[test]
    fn csv_and_binary_writers_round_trip_tpch() {
        let dir = temp_dir("tpch");
        let mut generator = TpchGenerator::new(TpchScale(0.02));
        let (orders, lineitems) = generator.generate();
        let schema = TpchGenerator::lineitem_schema();

        let csv_path = dir.join("lineitem.csv");
        write_csv(&csv_path, &lineitems, &schema, '|').unwrap();
        let csv_text = fs::read_to_string(&csv_path).unwrap();
        assert_eq!(csv_text.lines().count(), lineitems.len());

        let col_dir = dir.join("lineitem_cols");
        let table = write_column_table(&col_dir, &lineitems, &schema).unwrap();
        assert_eq!(table.row_count, lineitems.len());

        let row_path = dir.join("orders.prow");
        let row_table =
            write_row_table(&row_path, &orders, &TpchGenerator::orders_schema()).unwrap();
        assert_eq!(row_table.row_count, orders.len());
    }

    #[test]
    fn csv_writer_respects_schema_order_and_nulls() {
        let dir = temp_dir("nulls");
        let schema = Schema::from_pairs(vec![
            ("a", DataType::Int),
            ("b", DataType::String),
            ("c", DataType::Float),
        ]);
        let rows = vec![Value::record(vec![
            ("c", Value::Float(1.5)),
            ("a", Value::Int(7)),
        ])];
        let path = dir.join("x.csv");
        write_csv(&path, &rows, &schema, '|').unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "7||1.5\n");
    }
}
