//! Cache matching (§6, "Cache Matching").
//!
//! "For every cache that Proteus populates, the Caching Manager stores the
//! physical plan corresponding to the cache and uses it as a search key
//! during cache matching. [...] For a node in the current query to fully
//! match a node in a cached plan, i) they must both perform the same
//! operation, ii) have the same arguments, and iii) their children nodes must
//! match each other respectively."
//!
//! Plans are compared through their canonical signatures
//! ([`LogicalPlan::signature`]), traversed bottom-up. A fully-matched subtree
//! is replaced by a scan over the cache dataset; field references through the
//! original aliases keep working because the cache columns are named after
//! the leaf field of the cached expressions.
//!
//! Every successful lookup also records a hit on the matched entry
//! (inside [`CacheStore::lookup_by_signature`]), which feeds the store's
//! cost/benefit eviction score live: entries that keep matching queries
//! keep rising above eviction candidates.

use proteus_algebra::LogicalPlan;
use proteus_storage::CacheStore;

/// Record of one subtree replacement performed by cache matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheRewrite {
    /// Name of the cache that was spliced in.
    pub cache_name: String,
    /// Signature of the replaced subtree.
    pub replaced_signature: String,
}

/// Prefix used for the synthetic dataset names that cache scans reference.
pub const CACHE_DATASET_PREFIX: &str = "__cache::";

/// Rewrites the plan to read from matching caches. Returns the rewritten plan
/// and the list of rewrites applied (empty when nothing matched).
pub fn match_caches(plan: LogicalPlan, store: &CacheStore) -> (LogicalPlan, Vec<CacheRewrite>) {
    let mut rewrites = Vec::new();
    let rewritten = rewrite_node(plan, store, &mut rewrites);
    (rewritten, rewrites)
}

fn rewrite_node(
    plan: LogicalPlan,
    store: &CacheStore,
    rewrites: &mut Vec<CacheRewrite>,
) -> LogicalPlan {
    // Bottom-up: children first, then try to replace the (possibly already
    // rewritten) node itself.
    let plan = match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Select { input, predicate } => LogicalPlan::Select {
            input: Box::new(rewrite_node(*input, store, rewrites)),
            predicate,
        },
        LogicalPlan::Join {
            left,
            right,
            predicate,
            kind,
        } => LogicalPlan::Join {
            left: Box::new(rewrite_node(*left, store, rewrites)),
            right: Box::new(rewrite_node(*right, store, rewrites)),
            predicate,
            kind,
        },
        LogicalPlan::Unnest {
            input,
            path,
            alias,
            predicate,
            outer,
        } => LogicalPlan::Unnest {
            input: Box::new(rewrite_node(*input, store, rewrites)),
            path,
            alias,
            predicate,
            outer,
        },
        LogicalPlan::Reduce {
            input,
            outputs,
            predicate,
        } => LogicalPlan::Reduce {
            input: Box::new(rewrite_node(*input, store, rewrites)),
            outputs,
            predicate,
        },
        LogicalPlan::Nest {
            input,
            group_by,
            group_aliases,
            outputs,
            predicate,
        } => LogicalPlan::Nest {
            input: Box::new(rewrite_node(*input, store, rewrites)),
            group_by,
            group_aliases,
            outputs,
            predicate,
        },
        LogicalPlan::CacheScan {
            input,
            expressions,
            cache_name,
        } => LogicalPlan::CacheScan {
            input: Box::new(rewrite_node(*input, store, rewrites)),
            expressions,
            cache_name,
        },
    };

    try_replace(plan, store, rewrites)
}

/// Replaces the node itself if a cache holds exactly its output. Only
/// binding-producing subtrees (scans, scan+select, scan+unnest chains) are
/// candidates; aggregation results are cheap relative to data access and the
/// paper's caching manager focuses on replacing access paths.
fn try_replace(
    plan: LogicalPlan,
    store: &CacheStore,
    rewrites: &mut Vec<CacheRewrite>,
) -> LogicalPlan {
    let replaceable = matches!(
        plan,
        LogicalPlan::Scan { .. } | LogicalPlan::Select { .. } | LogicalPlan::Unnest { .. }
    );
    if !replaceable {
        return plan;
    }
    let signature = plan.signature();
    match store.lookup_by_signature(&signature) {
        Some(entry) => {
            // Preserve the alias bound by the replaced subtree so upstream
            // expressions still resolve.
            let alias = plan
                .bound_variables()
                .into_iter()
                .next()
                .unwrap_or_else(|| "c".to_string());
            let schema = proteus_algebra::Schema::new(
                entry
                    .columns
                    .iter()
                    .map(|(name, col)| proteus_algebra::Field::new(name.clone(), col.data_type()))
                    .collect(),
            );
            rewrites.push(CacheRewrite {
                cache_name: entry.name.clone(),
                replaced_signature: signature,
            });
            LogicalPlan::Scan {
                dataset: format!("{CACHE_DATASET_PREFIX}{}", entry.name),
                alias,
                schema,
                projected_fields: Vec::new(),
            }
        }
        None => plan,
    }
}

/// Extracts the cache name from a synthetic cache dataset name, if it is one.
pub fn cache_name_from_dataset(dataset: &str) -> Option<&str> {
    dataset.strip_prefix(CACHE_DATASET_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_algebra::{Expr, Monoid, ReduceSpec, Schema};
    use proteus_storage::cache::make_entry;
    use proteus_storage::{ColumnData, MemoryManager, SourceFormat};

    fn store_with(signature: &str) -> CacheStore {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(make_entry(
                "c0",
                signature,
                "lineitem",
                SourceFormat::Json,
                vec![("l_orderkey".to_string(), ColumnData::Int(vec![1, 2, 3]))],
                vec![0, 1, 2],
            ))
            .unwrap();
        store
    }

    fn filtered_scan() -> LogicalPlan {
        LogicalPlan::scan("lineitem", "l", Schema::empty())
            .select(Expr::path("l.l_orderkey").lt(Expr::int(100)))
    }

    #[test]
    fn full_subtree_match_replaces_with_cache_scan() {
        let subtree = filtered_scan();
        let store = store_with(&subtree.signature());
        let plan = subtree.reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")]);
        let (rewritten, rewrites) = match_caches(plan, &store);
        assert_eq!(rewrites.len(), 1);
        assert_eq!(rewrites[0].cache_name, "c0");
        // The select disappeared: the cache already holds qualifying rows.
        let mut names = Vec::new();
        rewritten.visit(&mut |n| names.push(n.name()));
        assert_eq!(names, vec!["Reduce", "Scan"]);
        // The scan references the synthetic cache dataset but keeps alias l.
        rewritten.visit(&mut |n| {
            if let LogicalPlan::Scan { dataset, alias, .. } = n {
                assert!(cache_name_from_dataset(dataset).is_some());
                assert_eq!(alias, "l");
            }
        });
    }

    #[test]
    fn no_match_leaves_plan_untouched() {
        let store = store_with("some other signature");
        let plan = filtered_scan().reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "c")]);
        let (rewritten, rewrites) = match_caches(plan.clone(), &store);
        assert!(rewrites.is_empty());
        assert_eq!(rewritten, plan);
    }

    #[test]
    fn different_predicate_does_not_match() {
        // Cache was built for < 100; the new query filters < 200.
        let store = store_with(&filtered_scan().signature());
        let plan = LogicalPlan::scan("lineitem", "l", Schema::empty())
            .select(Expr::path("l.l_orderkey").lt(Expr::int(200)))
            .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "c")]);
        let (_, rewrites) = match_caches(plan, &store);
        assert!(rewrites.is_empty());
    }

    #[test]
    fn inner_scan_of_join_can_be_replaced() {
        let scan = LogicalPlan::scan("lineitem", "l", Schema::empty());
        let store = store_with(&scan.signature());
        let plan = LogicalPlan::scan("orders", "o", Schema::empty())
            .join(
                scan,
                Expr::path("o.o_orderkey").eq(Expr::path("l.l_orderkey")),
                proteus_algebra::JoinKind::Inner,
            )
            .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "c")]);
        let (rewritten, rewrites) = match_caches(plan, &store);
        assert_eq!(rewrites.len(), 1);
        let mut cache_scans = 0;
        rewritten.visit(&mut |n| {
            if let LogicalPlan::Scan { dataset, .. } = n {
                if cache_name_from_dataset(dataset).is_some() {
                    cache_scans += 1;
                }
            }
        });
        assert_eq!(cache_scans, 1);
    }

    #[test]
    fn cache_name_extraction() {
        assert_eq!(cache_name_from_dataset("__cache::foo"), Some("foo"));
        assert_eq!(cache_name_from_dataset("lineitem"), None);
    }
}
