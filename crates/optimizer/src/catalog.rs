//! The metadata store (catalog): schemas, statistics and cost profiles per
//! registered dataset.
//!
//! §5.2: "Proteus uses a metadata store to maintain statistics per data
//! source, namely dataset cardinalities and min/max values per attribute, and
//! delegates statistics collection to each input plug-in."

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use proteus_algebra::Schema;
use proteus_plugins::{CostProfile, DatasetStats, PluginRegistry, ZoneMap};

/// Metadata for one dataset.
#[derive(Debug, Clone)]
pub struct DatasetMeta {
    /// Dataset name.
    pub name: String,
    /// Schema (possibly inferred by the plug-in).
    pub schema: Schema,
    /// Statistics collected by the plug-in.
    pub stats: DatasetStats,
    /// Cost profile of the plug-in serving the dataset.
    pub cost: CostProfile,
    /// Per-morsel zone maps already recorded by the plug-in (binary/cache
    /// record them eagerly; csv/json contribute whatever earlier scans
    /// derived). Used by [`crate::stats`] for clustering-aware selectivity.
    pub zone_maps: HashMap<String, Arc<ZoneMap>>,
}

/// The catalog: a snapshot-able map from dataset name to metadata.
#[derive(Clone, Default)]
pub struct Catalog {
    datasets: Arc<RwLock<HashMap<String, DatasetMeta>>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Builds a catalog by pulling schema/statistics/cost from every plug-in
    /// currently registered.
    pub fn from_registry(registry: &PluginRegistry) -> Catalog {
        let catalog = Catalog::new();
        for name in registry.datasets() {
            if let Some(plugin) = registry.get(&name) {
                catalog.insert(DatasetMeta {
                    name: name.clone(),
                    schema: plugin.schema().clone(),
                    stats: plugin.statistics(),
                    cost: plugin.cost_profile(),
                    zone_maps: plugin.cached_zone_maps().into_iter().collect(),
                });
            }
        }
        catalog
    }

    /// Adds or replaces a dataset's metadata.
    pub fn insert(&self, meta: DatasetMeta) {
        self.datasets.write().insert(meta.name.clone(), meta);
    }

    /// Registers a dataset with just a schema and cardinality (tests,
    /// in-memory datasets).
    pub fn insert_simple(&self, name: impl Into<String>, schema: Schema, cardinality: u64) {
        let name = name.into();
        self.insert(DatasetMeta {
            name: name.clone(),
            schema,
            stats: DatasetStats::with_cardinality(cardinality),
            cost: CostProfile::binary(),
            zone_maps: HashMap::new(),
        });
    }

    /// Metadata of a dataset.
    pub fn get(&self, name: &str) -> Option<DatasetMeta> {
        self.datasets.read().get(name).cloned()
    }

    /// Schema of a dataset (used by the SQL front-end).
    pub fn schema_of(&self, name: &str) -> Option<Schema> {
        self.get(name).map(|m| m.schema)
    }

    /// Cardinality of a dataset, if known.
    pub fn cardinality(&self, name: &str) -> Option<u64> {
        self.get(name).map(|m| m.stats.cardinality)
    }

    /// All registered dataset names.
    pub fn datasets(&self) -> Vec<String> {
        self.datasets.read().keys().cloned().collect()
    }

    /// Refreshes one dataset's statistics (the periodic statistics-gathering
    /// daemon of §5.2 calls this).
    pub fn update_stats(&self, name: &str, stats: DatasetStats) -> bool {
        let mut guard = self.datasets.write();
        match guard.get_mut(name) {
            Some(meta) => {
                meta.stats = stats;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_algebra::DataType;

    #[test]
    fn insert_and_lookup() {
        let catalog = Catalog::new();
        catalog.insert_simple(
            "lineitem",
            Schema::from_pairs(vec![("l_orderkey", DataType::Int)]),
            1000,
        );
        assert_eq!(catalog.cardinality("lineitem"), Some(1000));
        assert!(catalog
            .schema_of("lineitem")
            .unwrap()
            .index_of("l_orderkey")
            .is_some());
        assert!(catalog.get("ghost").is_none());
        assert_eq!(catalog.datasets(), vec!["lineitem"]);
    }

    #[test]
    fn update_stats_replaces_statistics() {
        let catalog = Catalog::new();
        catalog.insert_simple("t", Schema::empty(), 10);
        assert!(catalog.update_stats("t", DatasetStats::with_cardinality(99)));
        assert_eq!(catalog.cardinality("t"), Some(99));
        assert!(!catalog.update_stats("ghost", DatasetStats::with_cardinality(1)));
    }

    #[test]
    fn from_registry_pulls_plugin_metadata() {
        use bytes::Bytes;
        use proteus_plugins::json::JsonPlugin;
        let registry = PluginRegistry::new();
        let plugin = JsonPlugin::from_bytes(
            "events",
            Bytes::from("{\"x\": 1}\n{\"x\": 5}\n".to_string()),
        )
        .unwrap();
        registry.register(std::sync::Arc::new(plugin));
        let catalog = Catalog::from_registry(&registry);
        let meta = catalog.get("events").unwrap();
        assert_eq!(meta.stats.cardinality, 2);
        assert!(meta.cost.per_field_access > CostProfile::binary().per_field_access);
    }
}
