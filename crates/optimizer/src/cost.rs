//! The cost model.
//!
//! Cardinality estimation uses the statistics the plug-ins collected
//! (min/max interpolation for range predicates, distinct counts for equality,
//! the paper's 10 % default otherwise); cost estimation instantiates each
//! plug-in's cost formulas with those cardinalities. The optimizer proper
//! uses these estimates bottom-up for join ordering and access-path choice.

use proteus_algebra::{BinaryOp, Expr, LogicalPlan};
use proteus_plugins::stats::DEFAULT_SELECTIVITY;

use crate::catalog::Catalog;

/// Cardinality and cost estimate for a plan (sub)tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated number of output bindings.
    pub cardinality: f64,
    /// Estimated total cost in abstract per-value units.
    pub cost: f64,
}

/// The cost model, parameterized by the catalog.
#[derive(Clone)]
pub struct CostModel {
    catalog: Catalog,
}

impl CostModel {
    /// Creates a cost model over a catalog.
    pub fn new(catalog: Catalog) -> CostModel {
        CostModel { catalog }
    }

    /// Estimates the selectivity of a predicate over the datasets in scope.
    ///
    /// Conjunctions multiply; range predicates over a single attribute use
    /// min/max interpolation; equality uses distinct counts; everything else
    /// falls back to the default 10 %.
    pub fn selectivity(&self, predicate: &Expr) -> f64 {
        let conjuncts = predicate.split_conjunction();
        let mut selectivity = 1.0;
        for conjunct in conjuncts {
            selectivity *= self.conjunct_selectivity(&conjunct);
        }
        selectivity.clamp(0.0, 1.0)
    }

    fn conjunct_selectivity(&self, conjunct: &Expr) -> f64 {
        if let Expr::Binary { op, left, right } = conjunct {
            let (path, literal) = match (left.as_ref(), right.as_ref()) {
                (Expr::Path(p), Expr::Literal(v)) => (Some(p), Some(v.clone())),
                (Expr::Literal(v), Expr::Path(p)) => (Some(p), Some(v.clone())),
                _ => (None, None),
            };
            if let (Some(path), Some(literal)) = (path, literal) {
                // The path base is a scan alias; the attribute is the first
                // segment. Search every dataset for that attribute (aliases
                // are not tracked here, so attribute names must be distinct —
                // true for the TPC-H and Symantec schemas).
                if let Some(attr) = path.segments.first() {
                    for dataset in self.catalog.datasets() {
                        if let Some(meta) = self.catalog.get(&dataset) {
                            // Per-morsel zone maps answer first: their
                            // zone-weighted estimate respects clustering,
                            // where the dataset-level interpolation assumes
                            // a uniform spread.
                            if let Some(zones) = meta.zone_maps.get(attr) {
                                if let Some(s) =
                                    crate::stats::zone_selectivity(*op, zones, &literal)
                                {
                                    return s;
                                }
                            }
                            if let Some(stats) = meta.stats.column(attr) {
                                return match op {
                                    BinaryOp::Lt | BinaryOp::Le => stats.selectivity_lt(&literal),
                                    BinaryOp::Gt | BinaryOp::Ge => {
                                        1.0 - stats.selectivity_lt(&literal)
                                    }
                                    BinaryOp::Eq => stats.selectivity_eq(),
                                    BinaryOp::Neq => 1.0 - stats.selectivity_eq(),
                                    _ => DEFAULT_SELECTIVITY,
                                };
                            }
                        }
                    }
                }
            }
            // Equi-join predicate (path = path): handled at the join level.
            if *op == BinaryOp::Eq {
                return DEFAULT_SELECTIVITY;
            }
        }
        DEFAULT_SELECTIVITY
    }

    /// Estimates cardinality and cost of a plan bottom-up.
    pub fn estimate(&self, plan: &LogicalPlan) -> CostEstimate {
        match plan {
            LogicalPlan::Scan {
                dataset,
                projected_fields,
                schema,
                ..
            } => {
                let meta = self.catalog.get(dataset);
                let cardinality = meta
                    .as_ref()
                    .map(|m| m.stats.cardinality as f64)
                    .unwrap_or(1000.0);
                let field_count = if projected_fields.is_empty() {
                    schema.len().max(1)
                } else {
                    projected_fields.len()
                };
                let cost = meta
                    .map(|m| m.cost.scan_cost(cardinality as u64, field_count))
                    .unwrap_or(cardinality * field_count as f64);
                CostEstimate { cardinality, cost }
            }
            LogicalPlan::Select { input, predicate } => {
                let child = self.estimate(input);
                let selectivity = self.selectivity(predicate);
                CostEstimate {
                    cardinality: child.cardinality * selectivity,
                    cost: child.cost + child.cardinality,
                }
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                ..
            } => {
                let l = self.estimate(left);
                let r = self.estimate(right);
                // Equi-joins: |L ⋈ R| ≈ |L|·|R| / max(distinct); approximated
                // by the larger side (foreign-key join assumption). Other
                // predicates: default selectivity over the cross product.
                let is_equi = predicate.split_conjunction().iter().any(|c| {
                    matches!(c, Expr::Binary { op: BinaryOp::Eq, left, right }
                        if matches!(**left, Expr::Path(_)) && matches!(**right, Expr::Path(_)))
                });
                let cardinality = if is_equi {
                    l.cardinality.max(r.cardinality)
                } else {
                    l.cardinality * r.cardinality * DEFAULT_SELECTIVITY
                };
                // Radix hash join: materialize both sides + probe.
                let cost = l.cost + r.cost + 2.0 * (l.cardinality + r.cardinality);
                CostEstimate { cardinality, cost }
            }
            LogicalPlan::Unnest { input, .. } => {
                let child = self.estimate(input);
                // Assume an average fan-out of 4 nested elements per object.
                CostEstimate {
                    cardinality: child.cardinality * 4.0,
                    cost: child.cost + child.cardinality * 4.0,
                }
            }
            LogicalPlan::Reduce { input, .. } => {
                let child = self.estimate(input);
                CostEstimate {
                    cardinality: 1.0,
                    cost: child.cost + child.cardinality,
                }
            }
            LogicalPlan::Nest {
                input, group_by, ..
            } => {
                let child = self.estimate(input);
                let groups = (child.cardinality * 0.1).max(1.0) * group_by.len().max(1) as f64;
                CostEstimate {
                    cardinality: groups.min(child.cardinality),
                    cost: child.cost + 2.0 * child.cardinality,
                }
            }
            LogicalPlan::CacheScan { input, .. } => {
                let child = self.estimate(input);
                CostEstimate {
                    cardinality: child.cardinality,
                    cost: child.cost + child.cardinality,
                }
            }
        }
    }
}

/// The cost to (re)build a cache of `fields` expressions over `rows` source
/// tuples, in the cost model's units: one full scan of the source through
/// its plug-in's access profile. The cache store uses this as the
/// `build_cost` term of its cost/benefit eviction score, so caches over
/// expensive formats (JSON raw access) outlive equal-sized caches over
/// cheap ones (binary columns).
pub fn cache_build_cost(profile: &proteus_plugins::CostProfile, rows: u64, fields: usize) -> u64 {
    profile.scan_cost(rows, fields.max(1)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_algebra::{DataType, Monoid, ReduceSpec, Schema, Value};
    use proteus_plugins::stats::ColumnStats;
    use proteus_plugins::{CostProfile, DatasetStats};

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        let mut stats = DatasetStats::with_cardinality(10_000);
        stats.columns.insert(
            "l_orderkey".into(),
            ColumnStats {
                min: Value::Int(0),
                max: Value::Int(1000),
                distinct: 1000,
                nulls: 0,
            },
        );
        catalog.insert(crate::catalog::DatasetMeta {
            name: "lineitem".into(),
            schema: Schema::from_pairs(vec![
                ("l_orderkey", DataType::Int),
                ("l_quantity", DataType::Float),
            ]),
            stats,
            cost: CostProfile::json(),
            zone_maps: Default::default(),
        });
        catalog.insert_simple(
            "orders",
            Schema::from_pairs(vec![("o_orderkey", DataType::Int)]),
            2500,
        );
        catalog
    }

    fn scan(name: &str, alias: &str) -> LogicalPlan {
        LogicalPlan::scan(name, alias, Schema::empty())
    }

    #[test]
    fn range_selectivity_uses_min_max() {
        let model = CostModel::new(catalog());
        let half = Expr::path("l.l_orderkey").lt(Expr::int(500));
        assert!((model.selectivity(&half) - 0.5).abs() < 0.01);
        let fifth = Expr::path("l.l_orderkey").lt(Expr::int(200));
        assert!((model.selectivity(&fifth) - 0.2).abs() < 0.01);
        let all = Expr::path("l.l_orderkey").lt(Expr::int(5000));
        assert!((model.selectivity(&all) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zone_maps_override_uniform_interpolation() {
        use proteus_plugins::ZoneMap;
        use proteus_storage::ColumnData;
        let catalog = catalog();
        let mut meta = catalog.get("lineitem").unwrap();
        // Clustered skew: three zones of zeros, one zone spanning 0..=1000.
        // `l_orderkey < 1` truly passes ~75% of rows; the uniform guess
        // over [0, 1000] says ~0.1%.
        let mut vals = vec![0i64; 3072];
        vals.extend(0..1000);
        meta.zone_maps.insert(
            "l_orderkey".into(),
            std::sync::Arc::new(ZoneMap::from_column(&ColumnData::Int(vals))),
        );
        catalog.insert(meta);
        let model = CostModel::new(catalog);
        let s = model.selectivity(&Expr::path("l.l_orderkey").lt(Expr::int(1)));
        assert!(s > 0.74, "zone-aware estimate should see the zeros, s={s}");
    }

    #[test]
    fn conjunction_selectivities_multiply() {
        let model = CostModel::new(catalog());
        let pred = Expr::path("l.l_orderkey")
            .lt(Expr::int(500))
            .and(Expr::path("l.unknown_attr").gt(Expr::int(3)));
        let s = model.selectivity(&pred);
        assert!((s - 0.5 * DEFAULT_SELECTIVITY).abs() < 0.01);
    }

    #[test]
    fn select_reduces_estimated_cardinality() {
        let model = CostModel::new(catalog());
        let base = model.estimate(&scan("lineitem", "l"));
        let filtered = model
            .estimate(&scan("lineitem", "l").select(Expr::path("l.l_orderkey").lt(Expr::int(100))));
        assert_eq!(base.cardinality, 10_000.0);
        assert!(filtered.cardinality < base.cardinality);
        assert!(filtered.cost > base.cost);
    }

    #[test]
    fn equi_join_cardinality_is_larger_side() {
        let model = CostModel::new(catalog());
        let join = scan("orders", "o").join(
            scan("lineitem", "l"),
            Expr::path("o.o_orderkey").eq(Expr::path("l.l_orderkey")),
            proteus_algebra::JoinKind::Inner,
        );
        let est = model.estimate(&join);
        assert_eq!(est.cardinality, 10_000.0);
    }

    #[test]
    fn reduce_outputs_single_row() {
        let model = CostModel::new(catalog());
        let plan =
            scan("lineitem", "l").reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "c")]);
        assert_eq!(model.estimate(&plan).cardinality, 1.0);
    }

    #[test]
    fn unknown_dataset_gets_default_estimates() {
        let model = CostModel::new(catalog());
        let est = model.estimate(&scan("mystery", "m"));
        assert_eq!(est.cardinality, 1000.0);
    }
}
