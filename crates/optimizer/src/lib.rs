//! # proteus-optimizer
//!
//! The query optimizer of the Proteus reproduction (§4, "Query
//! Optimization"). It follows the paper's three-step approach:
//!
//! 1. the front-ends normalize queries (selection pushdown, unnesting) —
//!    implemented in `proteus-algebra`;
//! 2. the algebraic plan goes through rule-based rewrites (also in
//!    `proteus-algebra::rewrite`);
//! 3. this crate adds the *cost-based* transformations: access-path
//!    selection and join re-ordering driven by statistics and cost formulas
//!    that the relevant input plug-ins provide, plus the cache-matching pass
//!    of §6 that splices materialized caches into new plans.

pub mod cache_match;
pub mod catalog;
pub mod cost;
pub mod optimizer;
pub mod stats;

pub use cache_match::{match_caches, CacheRewrite};
pub use catalog::Catalog;
pub use cost::{CostEstimate, CostModel};
pub use optimizer::{OptimizedPlan, Optimizer};
pub use stats::{zone_selectivity, zone_selectivity_eq, zone_selectivity_lt};
