//! The optimizer driver: rule-based rewrites, cost-based join ordering and
//! cache matching, in the bottom-up order the paper describes.

use proteus_algebra::rewrite::rewrite as rule_rewrite;
use proteus_algebra::{Expr, JoinKind, LogicalPlan};
use proteus_storage::CacheStore;

use crate::cache_match::{match_caches, CacheRewrite};
use crate::catalog::Catalog;
use crate::cost::{CostEstimate, CostModel};

/// The result of optimization: the final plan plus what happened to it.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The optimized plan, ready for code generation.
    pub plan: LogicalPlan,
    /// Cost estimate of the final plan.
    pub estimate: CostEstimate,
    /// Cache rewrites applied, if any.
    pub cache_rewrites: Vec<CacheRewrite>,
    /// True if cost-based join reordering swapped any join inputs.
    pub joins_reordered: bool,
}

/// The Proteus query optimizer.
#[derive(Clone)]
pub struct Optimizer {
    catalog: Catalog,
    cost_model: CostModel,
}

impl Optimizer {
    /// Creates an optimizer over a catalog.
    pub fn new(catalog: Catalog) -> Optimizer {
        let cost_model = CostModel::new(catalog.clone());
        Optimizer {
            catalog,
            cost_model,
        }
    }

    /// The catalog used for estimation.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The cost model (exposed for the ablation benchmarks).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Optimizes a plan: cache matching first (so later passes see the
    /// cheaper access paths), then rule-based rewrites, then cost-based join
    /// re-ordering, then a final projection-pushdown pass.
    pub fn optimize(&self, plan: LogicalPlan, caches: Option<&CacheStore>) -> OptimizedPlan {
        let (plan, cache_rewrites) = match caches {
            Some(store) => match_caches(plan, store),
            None => (plan, Vec::new()),
        };
        let plan = rule_rewrite(plan);
        let (plan, joins_reordered) = self.reorder_joins(plan);
        let plan = proteus_algebra::rewrite::push_down_projections(plan);
        let estimate = self.cost_model.estimate(&plan);
        OptimizedPlan {
            plan,
            estimate,
            cache_rewrites,
            joins_reordered,
        }
    }

    /// Bottom-up join re-ordering: for every inner join, build the hash table
    /// on the smaller (estimated) input. With the radix join both sides are
    /// materialized, but probing with the larger side touches the hash table
    /// more locally and mirrors the paper's bottom-up, statistics-driven
    /// strategy.
    fn reorder_joins(&self, plan: LogicalPlan) -> (LogicalPlan, bool) {
        let mut reordered = false;
        let plan = self.reorder_node(plan, &mut reordered);
        (plan, reordered)
    }

    fn reorder_node(&self, plan: LogicalPlan, reordered: &mut bool) -> LogicalPlan {
        match plan {
            LogicalPlan::Join {
                left,
                right,
                predicate,
                kind,
            } => {
                let left = self.reorder_node(*left, reordered);
                let right = self.reorder_node(*right, reordered);
                if kind == JoinKind::Inner {
                    let l = self.cost_model.estimate(&left);
                    let r = self.cost_model.estimate(&right);
                    if r.cardinality < l.cardinality {
                        *reordered = true;
                        return LogicalPlan::Join {
                            left: Box::new(right),
                            right: Box::new(left),
                            predicate,
                            kind,
                        };
                    }
                }
                LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    predicate,
                    kind,
                }
            }
            LogicalPlan::Scan { .. } => plan,
            LogicalPlan::Select { input, predicate } => LogicalPlan::Select {
                input: Box::new(self.reorder_node(*input, reordered)),
                predicate,
            },
            LogicalPlan::Unnest {
                input,
                path,
                alias,
                predicate,
                outer,
            } => LogicalPlan::Unnest {
                input: Box::new(self.reorder_node(*input, reordered)),
                path,
                alias,
                predicate,
                outer,
            },
            LogicalPlan::Reduce {
                input,
                outputs,
                predicate,
            } => LogicalPlan::Reduce {
                input: Box::new(self.reorder_node(*input, reordered)),
                outputs,
                predicate,
            },
            LogicalPlan::Nest {
                input,
                group_by,
                group_aliases,
                outputs,
                predicate,
            } => LogicalPlan::Nest {
                input: Box::new(self.reorder_node(*input, reordered)),
                group_by,
                group_aliases,
                outputs,
                predicate,
            },
            LogicalPlan::CacheScan {
                input,
                expressions,
                cache_name,
            } => LogicalPlan::CacheScan {
                input: Box::new(self.reorder_node(*input, reordered)),
                expressions,
                cache_name,
            },
        }
    }

    /// Access-path decision for a scan: whether to consult a structural index
    /// (non-binary source) and whether statistics justify skipping the scan
    /// entirely (a contradiction such as `x < min(x)`).
    pub fn prune_impossible_filter(&self, dataset: &str, predicate: &Expr) -> bool {
        // When a range predicate excludes the whole [min, max] interval the
        // estimated selectivity is 0 — the caller may skip the dataset.
        if let Some(_meta) = self.catalog.get(dataset) {
            return self.cost_model.selectivity(predicate) == 0.0;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_algebra::{DataType, Monoid, ReduceSpec, Schema};

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        catalog.insert_simple(
            "lineitem",
            Schema::from_pairs(vec![
                ("l_orderkey", DataType::Int),
                ("l_quantity", DataType::Float),
            ]),
            60_000,
        );
        catalog.insert_simple(
            "orders",
            Schema::from_pairs(vec![("o_orderkey", DataType::Int)]),
            15_000,
        );
        catalog
    }

    fn scan(name: &str, alias: &str) -> LogicalPlan {
        LogicalPlan::scan(name, alias, Schema::empty())
    }

    #[test]
    fn join_builds_on_smaller_side() {
        let optimizer = Optimizer::new(catalog());
        // lineitem (large) joined with orders (small): lineitem is on the
        // left, so the optimizer should swap.
        let plan = scan("lineitem", "l")
            .join(
                scan("orders", "o"),
                Expr::path("o.o_orderkey").eq(Expr::path("l.l_orderkey")),
                JoinKind::Inner,
            )
            .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "c")]);
        let optimized = optimizer.optimize(plan, None);
        assert!(optimized.joins_reordered);
        let mut left_dataset = String::new();
        optimized.plan.visit(&mut |n| {
            if let LogicalPlan::Join { left, .. } = n {
                if let LogicalPlan::Scan { dataset, .. } = left.as_ref() {
                    left_dataset = dataset.clone();
                }
            }
        });
        assert_eq!(left_dataset, "orders");
    }

    #[test]
    fn already_ordered_join_is_untouched() {
        let optimizer = Optimizer::new(catalog());
        let plan = scan("orders", "o")
            .join(
                scan("lineitem", "l"),
                Expr::path("o.o_orderkey").eq(Expr::path("l.l_orderkey")),
                JoinKind::Inner,
            )
            .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "c")]);
        let optimized = optimizer.optimize(plan, None);
        assert!(!optimized.joins_reordered);
    }

    #[test]
    fn optimize_runs_rule_rewrites_and_estimates() {
        let optimizer = Optimizer::new(catalog());
        let plan = scan("lineitem", "l")
            .join(scan("orders", "o"), Expr::boolean(true), JoinKind::Inner)
            .select(
                Expr::path("o.o_orderkey")
                    .eq(Expr::path("l.l_orderkey"))
                    .and(Expr::path("l.l_quantity").lt(Expr::int(10))),
            )
            .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "c")]);
        let optimized = optimizer.optimize(plan, None);
        // The cross-side equality must have been folded into the join.
        let mut join_pred_nontrivial = false;
        optimized.plan.visit(&mut |n| {
            if let LogicalPlan::Join { predicate, .. } = n {
                join_pred_nontrivial = *predicate != Expr::boolean(true);
            }
        });
        assert!(join_pred_nontrivial);
        assert!(optimized.estimate.cost > 0.0);
        // Projection pushdown annotated the scans.
        let mut projected = 0;
        optimized.plan.visit(&mut |n| {
            if let LogicalPlan::Scan {
                projected_fields, ..
            } = n
            {
                projected += projected_fields.len();
            }
        });
        assert!(projected >= 2);
    }

    #[test]
    fn cache_matching_is_applied_when_store_given() {
        use proteus_storage::cache::make_entry;
        use proteus_storage::{ColumnData, MemoryManager, SourceFormat};
        let optimizer = Optimizer::new(catalog());
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        let base = scan("lineitem", "l");
        store
            .insert(make_entry(
                "lineitem_cache",
                base.signature(),
                "lineitem",
                SourceFormat::Json,
                vec![("l_orderkey".to_string(), ColumnData::Int(vec![1, 2]))],
                vec![0, 1],
            ))
            .unwrap();
        let plan = base.reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "c")]);
        let optimized = optimizer.optimize(plan, Some(&store));
        assert_eq!(optimized.cache_rewrites.len(), 1);
    }
}
