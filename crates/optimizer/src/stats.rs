//! Zone-map-backed selectivity estimation.
//!
//! The dataset-level [`ColumnStats`](proteus_plugins::ColumnStats) answer
//! range predicates with a single min/max interpolation — implicitly
//! assuming a uniform distribution across the whole column. The per-morsel
//! [`ZoneMap`]s recorded by the plug-ins carry 1024-row-granular bounds, so
//! the same interpolation applied zone by zone and weighted by each zone's
//! non-null row count gives an estimate that respects clustering and skew:
//! a clustered 2%-selective predicate estimates near 2% instead of the
//! uniform guess, which is what lets the cost model prefer the selective
//! conjunct (and the morsel-skipping scan) with confidence.
//!
//! All bounds live in the same `f64` total-order view the compare kernels
//! use (`i64 as f64`), so estimates and execution agree on which zones can
//! pass at all.

use proteus_algebra::{BinaryOp, Value};
use proteus_plugins::ZoneMap;

/// Estimated selectivity of `attr < bound` from per-zone bounds: each
/// zone contributes its clamped uniform interpolation weighted by its
/// non-null rows. Returns `None` when the zone map cannot answer (empty,
/// non-numeric column, or a non-numeric bound) — callers fall back to the
/// dataset-level stats.
pub fn zone_selectivity_lt(zones: &ZoneMap, bound: &Value) -> Option<f64> {
    let b = bound.as_float().ok()?;
    if zones.row_count() == 0 {
        return Some(0.0);
    }
    let mut passing = 0.0f64;
    for entry in zones.entries() {
        let non_null = entry.non_null() as f64;
        if non_null == 0.0 {
            continue;
        }
        if !entry.numeric {
            return None;
        }
        let fraction = if b <= entry.min {
            0.0
        } else if b > entry.max {
            1.0
        } else if entry.max > entry.min {
            ((b - entry.min) / (entry.max - entry.min)).clamp(0.0, 1.0)
        } else {
            // Degenerate single-value zone with b == max: `<` excludes it.
            0.0
        };
        passing += fraction * non_null;
    }
    Some(passing / zones.row_count() as f64)
}

/// Estimated selectivity of `attr = literal` from per-zone bounds: only
/// zones whose `[min, max]` covers the literal can contribute, so the
/// estimate is the covered non-null fraction capped by the dataset-level
/// distinct-count estimate. Returns `None` when the zone map cannot answer.
pub fn zone_selectivity_eq(zones: &ZoneMap, literal: &Value) -> Option<f64> {
    let v = literal.as_float().ok()?;
    if zones.row_count() == 0 {
        return Some(0.0);
    }
    let mut covered = 0.0f64;
    for entry in zones.entries() {
        let non_null = entry.non_null() as f64;
        if non_null == 0.0 {
            continue;
        }
        if !entry.numeric {
            return None;
        }
        if v >= entry.min && v <= entry.max {
            covered += non_null;
        }
    }
    let covered_fraction = covered / zones.row_count() as f64;
    Some(covered_fraction.min(zones.column_stats().selectivity_eq()))
}

/// Zone-aware selectivity for one `attr <op> literal` conjunct, or `None`
/// when the operator or the zone map cannot answer.
pub fn zone_selectivity(op: BinaryOp, zones: &ZoneMap, literal: &Value) -> Option<f64> {
    match op {
        BinaryOp::Lt | BinaryOp::Le => zone_selectivity_lt(zones, literal),
        BinaryOp::Gt | BinaryOp::Ge => zone_selectivity_lt(zones, literal).map(|s| 1.0 - s),
        BinaryOp::Eq => zone_selectivity_eq(zones, literal),
        BinaryOp::Neq => zone_selectivity_eq(zones, literal).map(|s| 1.0 - s),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_storage::ColumnData;

    /// 4096 clustered rows: values equal their OID, so zone `z` spans
    /// exactly `[1024z, 1024z + 1023]`.
    fn clustered() -> ZoneMap {
        ZoneMap::from_column(&ColumnData::Int((0..4096).collect()))
    }

    #[test]
    fn clustered_range_estimates_follow_zones() {
        let zones = clustered();
        // First zone only: ~25% of rows, and the zone-level estimate nails
        // it where the uniform dataset-level estimate would too (values are
        // uniform here) — the point is agreement at zone granularity.
        let s = zone_selectivity_lt(&zones, &Value::Int(1024)).unwrap();
        assert!((s - 0.25).abs() < 0.01, "s={s}");
        assert_eq!(zone_selectivity_lt(&zones, &Value::Int(-5)), Some(0.0));
        assert_eq!(zone_selectivity_lt(&zones, &Value::Int(100_000)), Some(1.0));
    }

    #[test]
    fn skewed_clustering_beats_uniform_assumption() {
        // 3 zones of zeros, 1 zone spanning 0..=1023: `< 1` truly passes
        // ~3/4 of the rows (all the zeros). The uniform dataset-level
        // estimate over [0, 1023] would say ~0.1%; the zone-weighted
        // estimate sees three full zones pass.
        let mut vals = vec![0i64; 3072];
        vals.extend(0..1024);
        let zones = ZoneMap::from_column(&ColumnData::Int(vals));
        let s = zone_selectivity_lt(&zones, &Value::Int(1)).unwrap();
        assert!(s > 0.74, "s={s}");
    }

    #[test]
    fn equality_only_counts_covering_zones() {
        let zones = clustered();
        // 2500 lives in zone 2 only: covered fraction 25%, then capped by
        // the distinct estimate (4096 distinct → ~0.02%).
        let s = zone_selectivity_eq(&zones, &Value::Int(2500)).unwrap();
        assert!(s <= 0.25);
        assert!(s > 0.0);
        assert_eq!(zone_selectivity_eq(&zones, &Value::Int(-1)), Some(0.0));
    }

    #[test]
    fn non_numeric_zone_maps_decline_to_answer() {
        let zones = ZoneMap::from_column(&ColumnData::Str(vec!["a".into(), "b".into()]));
        assert_eq!(zone_selectivity_lt(&zones, &Value::Int(1)), None);
        assert_eq!(zone_selectivity(BinaryOp::Eq, &zones, &Value::Int(1)), None);
        let numeric = clustered();
        assert_eq!(
            zone_selectivity_lt(&numeric, &Value::str("nope")),
            None,
            "non-numeric bound"
        );
    }
}
