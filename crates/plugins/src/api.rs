//! The input plug-in API (Table 2 of the paper).
//!
//! Plug-ins serve two kinds of consumers:
//!
//! 1. The *generated query pipelines* of `proteus-core`. When a scan operator
//!    "triggers" a plug-in, the plug-in inspects the query's field-of-interest
//!    list and the dataset instance and returns [`ScanAccessors`]: one
//!    specialized, monomorphic accessor per requested field (the reproduction
//!    of the paper's generated data-access code). The per-tuple hot path then
//!    contains exactly one indirect call per field and no type dispatch.
//! 2. The *interpreted baseline engines* and the expression generators, which
//!    use the generic `read_value`/`read_path` entry points.
//!
//! Every data object a plug-in exposes is identified by an [`Oid`] — a row
//! counter for flat data, an object index for JSON — which later calls use to
//! re-access values lazily.

use std::sync::Arc;

use proteus_algebra::{Schema, Value};
use proteus_storage::SourceFormat;

use crate::error::Result;
use crate::stats::{CostProfile, DatasetStats};

/// Identifier of one data object ("tuple") within a dataset.
pub type Oid = u64;

/// A specialized accessor for one field of a dataset: given an OID it
/// produces the field's value with no schema lookups or type dispatch on the
/// hot path. The closure captured inside is built once per query by the
/// plug-in (`generate()`), mirroring the code the paper's plug-ins emit.
#[derive(Clone)]
pub enum FieldAccessor {
    /// Accessor for an integer (or date) field.
    Int(Arc<dyn Fn(Oid) -> i64 + Send + Sync>),
    /// Accessor for a float field.
    Float(Arc<dyn Fn(Oid) -> f64 + Send + Sync>),
    /// Accessor for a boolean field.
    Bool(Arc<dyn Fn(Oid) -> bool + Send + Sync>),
    /// Accessor for a string field.
    Str(Arc<dyn Fn(Oid) -> String + Send + Sync>),
    /// Fallback accessor producing a boxed value (nested fields, nulls).
    Generic(Arc<dyn Fn(Oid) -> Value + Send + Sync>),
}

impl FieldAccessor {
    /// Reads the field as a [`Value`] regardless of specialization.
    pub fn value(&self, oid: Oid) -> Value {
        match self {
            FieldAccessor::Int(f) => Value::Int(f(oid)),
            FieldAccessor::Float(f) => Value::Float(f(oid)),
            FieldAccessor::Bool(f) => Value::Bool(f(oid)),
            FieldAccessor::Str(f) => Value::Str(f(oid)),
            FieldAccessor::Generic(f) => f(oid),
        }
    }

    /// Reads the field as an `f64`, the common numeric fast path for
    /// predicates and aggregates.
    pub fn as_f64(&self, oid: Oid) -> f64 {
        match self {
            FieldAccessor::Int(f) => f(oid) as f64,
            FieldAccessor::Float(f) => f(oid),
            FieldAccessor::Bool(f) => f64::from(u8::from(f(oid))),
            FieldAccessor::Str(_) | FieldAccessor::Generic(_) => match self.value(oid) {
                Value::Int(i) => i as f64,
                Value::Float(x) => x,
                Value::Date(d) => d as f64,
                _ => f64::NAN,
            },
        }
    }

    /// Reads the field as an `i64`.
    pub fn as_i64(&self, oid: Oid) -> i64 {
        match self {
            FieldAccessor::Int(f) => f(oid),
            FieldAccessor::Float(f) => f(oid) as i64,
            FieldAccessor::Bool(f) => i64::from(f(oid)),
            _ => match self.value(oid) {
                Value::Int(i) => i,
                Value::Float(x) => x as i64,
                Value::Date(d) => d,
                _ => 0,
            },
        }
    }

    /// True when the accessor is numeric-specialized (no boxing per call).
    pub fn is_specialized_numeric(&self) -> bool {
        matches!(self, FieldAccessor::Int(_) | FieldAccessor::Float(_))
    }

    /// Builds a [`BatchFill`] from this accessor: the enum dispatch happens
    /// once here, and the returned closure runs a monomorphic loop per
    /// morsel (one indirect call per *morsel* per field on the scan path,
    /// instead of one per tuple).
    pub fn batch_fill(&self) -> BatchFill {
        match self {
            FieldAccessor::Int(f) => {
                let f = f.clone();
                Arc::new(move |start, count, out: &mut [Value], base, stride| {
                    for i in 0..count {
                        out[base + i * stride] = Value::Int(f(start + i as Oid));
                    }
                })
            }
            FieldAccessor::Float(f) => {
                let f = f.clone();
                Arc::new(move |start, count, out: &mut [Value], base, stride| {
                    for i in 0..count {
                        out[base + i * stride] = Value::Float(f(start + i as Oid));
                    }
                })
            }
            FieldAccessor::Bool(f) => {
                let f = f.clone();
                Arc::new(move |start, count, out: &mut [Value], base, stride| {
                    for i in 0..count {
                        out[base + i * stride] = Value::Bool(f(start + i as Oid));
                    }
                })
            }
            FieldAccessor::Str(f) => {
                let f = f.clone();
                Arc::new(move |start, count, out: &mut [Value], base, stride| {
                    for i in 0..count {
                        out[base + i * stride] = Value::Str(f(start + i as Oid));
                    }
                })
            }
            FieldAccessor::Generic(f) => {
                let f = f.clone();
                Arc::new(move |start, count, out: &mut [Value], base, stride| {
                    for i in 0..count {
                        out[base + i * stride] = f(start + i as Oid);
                    }
                })
            }
        }
    }
}

/// A morsel filler for one field: writes the values of objects
/// `start..start + count` into a row-major batch buffer, value `i` landing at
/// `out[base + i * stride]`. Plug-ins may provide specialized fillers (e.g.
/// direct column copies); [`FieldAccessor::batch_fill`] is the generic
/// fallback.
pub type BatchFill = Arc<dyn Fn(Oid, usize, &mut [Value], usize, usize) + Send + Sync>;

/// Builds the columnar fast-path filler: a direct strided copy out of a
/// shared raw column, one virtual call per (field, morsel). Used by the
/// binary column plug-in, the cache plug-in and the engine's cache-served
/// scan accessors.
pub fn column_batch_fill(column: Arc<proteus_storage::ColumnData>) -> BatchFill {
    Arc::new(move |start, count, out: &mut [Value], base, stride| {
        column.fill_values(start as usize, count, out, base, stride)
    })
}

impl std::fmt::Debug for FieldAccessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            FieldAccessor::Int(_) => "Int",
            FieldAccessor::Float(_) => "Float",
            FieldAccessor::Bool(_) => "Bool",
            FieldAccessor::Str(_) => "Str",
            FieldAccessor::Generic(_) => "Generic",
        };
        write!(f, "FieldAccessor::{kind}")
    }
}

/// What a plug-in hands to the scan operator of the generated engine: the
/// number of objects to scan and one specialized accessor per requested
/// field (the "virtual memory buffers" get filled from these).
#[derive(Clone)]
pub struct ScanAccessors {
    /// Number of objects (tuples) the scan will produce.
    pub row_count: u64,
    /// `(field name, accessor)` pairs in the order they were requested.
    pub fields: Vec<(String, FieldAccessor)>,
    /// `(field name, morsel filler)` pairs: the batched scan path. Same
    /// order as `fields`; plug-ins with a native columnar layout install
    /// direct-copy fillers, everyone else wraps the accessor.
    pub batch_fields: Vec<(String, BatchFill)>,
    /// Human-readable description of the access path the plug-in chose
    /// (shows up in the emitted pseudo-IR, e.g. `"csv(structural-index N=8)"`).
    pub access_path: String,
}

impl ScanAccessors {
    /// Builds accessors with the generic per-accessor batch fillers.
    pub fn from_accessors(
        row_count: u64,
        fields: Vec<(String, FieldAccessor)>,
        access_path: impl Into<String>,
    ) -> ScanAccessors {
        let batch_fields = fields
            .iter()
            .map(|(name, accessor)| (name.clone(), accessor.batch_fill()))
            .collect();
        ScanAccessors {
            row_count,
            fields,
            batch_fields,
            access_path: access_path.into(),
        }
    }

    /// Looks up the accessor generated for a field.
    pub fn field(&self, name: &str) -> Option<&FieldAccessor> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, a)| a)
    }

    /// Looks up the morsel filler generated for a field.
    pub fn batch_field(&self, name: &str) -> Option<&BatchFill> {
        self.batch_fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f)
    }
}

impl std::fmt::Debug for ScanAccessors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanAccessors")
            .field("row_count", &self.row_count)
            .field("fields", &self.fields)
            .field("access_path", &self.access_path)
            .finish()
    }
}

/// Cursor over a nested collection, produced by `unnest_init`.
///
/// The paper splits this into `unnestInit()` / `unnestHasNext()` /
/// `unnestGetNext()`; the cursor carries the same state machine.
#[derive(Debug)]
pub struct UnnestCursor {
    items: Vec<Value>,
    position: usize,
}

impl UnnestCursor {
    /// Creates a cursor over already-extracted collection elements.
    pub fn new(items: Vec<Value>) -> Self {
        UnnestCursor { items, position: 0 }
    }

    /// `unnestHasNext()`.
    pub fn has_next(&self) -> bool {
        self.position < self.items.len()
    }

    /// `unnestGetNext()`.
    pub fn get_next(&mut self) -> Option<Value> {
        let item = self.items.get(self.position).cloned();
        if item.is_some() {
            self.position += 1;
        }
        item
    }

    /// Number of elements remaining.
    pub fn remaining(&self) -> usize {
        self.items.len() - self.position
    }
}

impl Iterator for UnnestCursor {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        self.get_next()
    }
}

/// The input plug-in interface (Table 2).
pub trait InputPlugin: Send + Sync {
    /// The dataset this plug-in serves.
    fn dataset(&self) -> &str;

    /// The data format the plug-in encapsulates.
    fn format(&self) -> SourceFormat;

    /// The dataset schema (possibly inferred).
    fn schema(&self) -> &Schema;

    /// Number of data objects in the dataset.
    fn len(&self) -> u64;

    /// True if the dataset has no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `generate()`: builds the specialized scan accessors for the requested
    /// fields, choosing the most appropriate access path for this dataset
    /// instance (structural index, deterministic layout, raw columns, ...).
    fn generate(&self, fields: &[String]) -> Result<ScanAccessors>;

    /// `readValue()`: generic single-value access by OID and field name.
    fn read_value(&self, oid: Oid, field: &str) -> Result<Value>;

    /// `readPath()`: navigates a (possibly nested) path within the object
    /// identified by `oid`.
    fn read_path(&self, oid: Oid, path: &[String]) -> Result<Value>;

    /// `unnestInit()` + `unnestHasNext()`/`unnestGetNext()`: returns a cursor
    /// over the nested collection at `path` within the object.
    fn unnest_init(&self, oid: Oid, path: &[String]) -> Result<UnnestCursor>;

    /// `hashValue()`: a stable hash of a field value, used by the radix
    /// join/grouping operators.
    fn hash_value(&self, oid: Oid, field: &str) -> Result<u64> {
        Ok(self.read_value(oid, field)?.stable_hash())
    }

    /// `flushValue()`: renders a field value into the query output buffer.
    fn flush_value(&self, oid: Oid, field: &str, out: &mut String) -> Result<()> {
        let v = self.read_value(oid, field)?;
        out.push_str(&v.to_string());
        Ok(())
    }

    /// Dataset statistics for the optimizer (collected on first/cold access).
    fn statistics(&self) -> DatasetStats;

    /// The plug-in's cost profile: per-tuple and per-field access cost
    /// factors the optimizer plugs into its cost formulas.
    fn cost_profile(&self) -> CostProfile;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessor_value_conversions() {
        let acc = FieldAccessor::Int(Arc::new(|oid| oid as i64 * 2));
        assert_eq!(acc.value(3), Value::Int(6));
        assert_eq!(acc.as_f64(3), 6.0);
        assert_eq!(acc.as_i64(3), 6);
        assert!(acc.is_specialized_numeric());

        let acc = FieldAccessor::Str(Arc::new(|oid| format!("s{oid}")));
        assert_eq!(acc.value(1), Value::Str("s1".into()));
        assert!(!acc.is_specialized_numeric());
        assert!(acc.as_f64(1).is_nan());
    }

    #[test]
    fn generic_accessor_numeric_views() {
        let acc = FieldAccessor::Generic(Arc::new(|oid| Value::Float(oid as f64 + 0.5)));
        assert_eq!(acc.as_f64(2), 2.5);
        assert_eq!(acc.as_i64(2), 2);
    }

    #[test]
    fn scan_accessors_field_lookup() {
        let scan = ScanAccessors::from_accessors(
            10,
            vec![(
                "x".to_string(),
                FieldAccessor::Int(Arc::new(|oid| oid as i64)),
            )],
            "test",
        );
        assert!(scan.field("x").is_some());
        assert!(scan.field("y").is_none());
        assert!(scan.batch_field("x").is_some());
        assert!(scan.batch_field("y").is_none());
    }

    #[test]
    fn batch_fill_matches_per_tuple_accessor() {
        let accessor = FieldAccessor::Int(Arc::new(|oid| oid as i64 * 3));
        let fill = accessor.batch_fill();
        // Strided destination: width-2 rows, slot 1.
        let mut out = vec![Value::Null; 8];
        fill(5, 4, &mut out, 1, 2);
        for i in 0..4u64 {
            assert_eq!(out[1 + i as usize * 2], accessor.value(5 + i));
            assert_eq!(out[i as usize * 2], Value::Null);
        }
    }

    #[test]
    fn unnest_cursor_state_machine() {
        let mut cursor = UnnestCursor::new(vec![Value::Int(1), Value::Int(2)]);
        assert!(cursor.has_next());
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.get_next(), Some(Value::Int(1)));
        assert_eq!(cursor.get_next(), Some(Value::Int(2)));
        assert!(!cursor.has_next());
        assert_eq!(cursor.get_next(), None);
    }

    #[test]
    fn unnest_cursor_is_an_iterator() {
        let cursor = UnnestCursor::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let collected: Vec<Value> = cursor.collect();
        assert_eq!(collected.len(), 3);
    }
}
