//! The input plug-in API (Table 2 of the paper).
//!
//! Plug-ins serve two kinds of consumers:
//!
//! 1. The *generated query pipelines* of `proteus-core`. When a scan operator
//!    "triggers" a plug-in, the plug-in inspects the query's field-of-interest
//!    list and the dataset instance and returns [`ScanAccessors`]: one
//!    specialized, monomorphic accessor per requested field (the reproduction
//!    of the paper's generated data-access code). The per-tuple hot path then
//!    contains exactly one indirect call per field and no type dispatch.
//! 2. The *interpreted baseline engines* and the expression generators, which
//!    use the generic `read_value`/`read_path` entry points.
//!
//! Every data object a plug-in exposes is identified by an [`Oid`] — a row
//! counter for flat data, an object index for JSON — which later calls use to
//! re-access values lazily.

use std::sync::Arc;

use proteus_algebra::{Schema, Value};
use proteus_storage::SourceFormat;

use crate::error::Result;
use crate::stats::{CostProfile, DatasetStats};

/// Identifier of one data object ("tuple") within a dataset.
pub type Oid = u64;

/// How the textual plug-ins (CSV/JSON) treat rows that fail to parse —
/// garbled lines, truncated objects, text that is not valid for the
/// field's declared type.
///
/// The policy is applied at registration time, when the plug-ins build
/// their structural indexes (so query hot paths never re-validate):
/// `Fail` rejects the dataset with a row-numbered error, `Skip` removes
/// the offending rows from the scan, `Null` keeps them with every typed
/// field read as `Value::Null`. Skipped/nulled rows are counted and
/// surface as `ExecutionMetrics::bad_rows` on queries over the dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BadRowPolicy {
    /// Reject the dataset at registration with a row-numbered error.
    #[default]
    Fail,
    /// Drop bad rows from the scan entirely.
    Skip,
    /// Keep bad rows; their typed fields read as null.
    Null,
}

/// A specialized accessor for one field of a dataset: given an OID it
/// produces the field's value with no schema lookups or type dispatch on the
/// hot path. The closure captured inside is built once per query by the
/// plug-in (`generate()`), mirroring the code the paper's plug-ins emit.
#[derive(Clone)]
pub enum FieldAccessor {
    /// Accessor for an integer (or date) field.
    Int(Arc<dyn Fn(Oid) -> i64 + Send + Sync>),
    /// Accessor for a float field.
    Float(Arc<dyn Fn(Oid) -> f64 + Send + Sync>),
    /// Accessor for a boolean field.
    Bool(Arc<dyn Fn(Oid) -> bool + Send + Sync>),
    /// Accessor for a string field.
    Str(Arc<dyn Fn(Oid) -> String + Send + Sync>),
    /// Fallback accessor producing a boxed value (nested fields, nulls).
    Generic(Arc<dyn Fn(Oid) -> Value + Send + Sync>),
}

impl FieldAccessor {
    /// Reads the field as a [`Value`] regardless of specialization.
    pub fn value(&self, oid: Oid) -> Value {
        match self {
            FieldAccessor::Int(f) => Value::Int(f(oid)),
            FieldAccessor::Float(f) => Value::Float(f(oid)),
            FieldAccessor::Bool(f) => Value::Bool(f(oid)),
            FieldAccessor::Str(f) => Value::Str(f(oid)),
            FieldAccessor::Generic(f) => f(oid),
        }
    }

    /// Reads the field as an `f64`, the common numeric fast path for
    /// predicates and aggregates.
    pub fn as_f64(&self, oid: Oid) -> f64 {
        match self {
            FieldAccessor::Int(f) => f(oid) as f64,
            FieldAccessor::Float(f) => f(oid),
            FieldAccessor::Bool(f) => f64::from(u8::from(f(oid))),
            FieldAccessor::Str(_) | FieldAccessor::Generic(_) => match self.value(oid) {
                Value::Int(i) => i as f64,
                Value::Float(x) => x,
                Value::Date(d) => d as f64,
                _ => f64::NAN,
            },
        }
    }

    /// Reads the field as an `i64`.
    pub fn as_i64(&self, oid: Oid) -> i64 {
        match self {
            FieldAccessor::Int(f) => f(oid),
            FieldAccessor::Float(f) => f(oid) as i64,
            FieldAccessor::Bool(f) => i64::from(f(oid)),
            _ => match self.value(oid) {
                Value::Int(i) => i,
                Value::Float(x) => x as i64,
                Value::Date(d) => d,
                _ => 0,
            },
        }
    }

    /// True when the accessor is numeric-specialized (no boxing per call).
    pub fn is_specialized_numeric(&self) -> bool {
        matches!(self, FieldAccessor::Int(_) | FieldAccessor::Float(_))
    }

    /// Builds a [`BatchFill`] from this accessor: the enum dispatch happens
    /// once here, and the returned closure runs a monomorphic loop per
    /// morsel (one indirect call per *morsel* per field on the scan path,
    /// instead of one per tuple).
    pub fn batch_fill(&self) -> BatchFill {
        match self {
            FieldAccessor::Int(f) => {
                let f = f.clone();
                Arc::new(move |start, count, out: &mut [Value], base, stride| {
                    for i in 0..count {
                        out[base + i * stride] = Value::Int(f(start + i as Oid));
                    }
                })
            }
            FieldAccessor::Float(f) => {
                let f = f.clone();
                Arc::new(move |start, count, out: &mut [Value], base, stride| {
                    for i in 0..count {
                        out[base + i * stride] = Value::Float(f(start + i as Oid));
                    }
                })
            }
            FieldAccessor::Bool(f) => {
                let f = f.clone();
                Arc::new(move |start, count, out: &mut [Value], base, stride| {
                    for i in 0..count {
                        out[base + i * stride] = Value::Bool(f(start + i as Oid));
                    }
                })
            }
            FieldAccessor::Str(f) => {
                let f = f.clone();
                Arc::new(move |start, count, out: &mut [Value], base, stride| {
                    for i in 0..count {
                        out[base + i * stride] = Value::Str(f(start + i as Oid));
                    }
                })
            }
            FieldAccessor::Generic(f) => {
                let f = f.clone();
                Arc::new(move |start, count, out: &mut [Value], base, stride| {
                    for i in 0..count {
                        out[base + i * stride] = f(start + i as Oid);
                    }
                })
            }
        }
    }

    /// Builds a [`TypedFill`] from this accessor, when it is specialized:
    /// the same closure [`FieldAccessor::batch_fill`] loops over, minus the
    /// `Value` boxing — so the typed and row-major paths agree *by
    /// construction*. `Generic` accessors (nested/nullable shapes) have no
    /// typed form.
    pub fn typed_fill(&self) -> Option<(TypedKind, TypedFill)> {
        Some(match self {
            FieldAccessor::Int(f) => {
                let f = f.clone();
                let fill: TypedFill = Arc::new(move |start, count, out: &mut TypedColumn| {
                    out.begin(TypedKind::I64, count);
                    for i in 0..count {
                        out.push_i64(f(start + i as Oid));
                    }
                });
                (TypedKind::I64, fill)
            }
            FieldAccessor::Float(f) => {
                let f = f.clone();
                let fill: TypedFill = Arc::new(move |start, count, out: &mut TypedColumn| {
                    out.begin(TypedKind::F64, count);
                    for i in 0..count {
                        out.push_f64(f(start + i as Oid));
                    }
                });
                (TypedKind::F64, fill)
            }
            FieldAccessor::Bool(f) => {
                let f = f.clone();
                let fill: TypedFill = Arc::new(move |start, count, out: &mut TypedColumn| {
                    out.begin(TypedKind::Bool, count);
                    for i in 0..count {
                        out.push_bool(f(start + i as Oid));
                    }
                });
                (TypedKind::Bool, fill)
            }
            FieldAccessor::Str(f) => {
                let f = f.clone();
                let fill: TypedFill = Arc::new(move |start, count, out: &mut TypedColumn| {
                    out.begin(TypedKind::Str, count);
                    for i in 0..count {
                        out.push_str(&f(start + i as Oid));
                    }
                });
                (TypedKind::Str, fill)
            }
            FieldAccessor::Generic(_) => return None,
        })
    }
}

/// A morsel filler for one field: writes the values of objects
/// `start..start + count` into a row-major batch buffer, value `i` landing at
/// `out[base + i * stride]`. Plug-ins may provide specialized fillers (e.g.
/// direct column copies); [`FieldAccessor::batch_fill`] is the generic
/// fallback.
pub type BatchFill = Arc<dyn Fn(Oid, usize, &mut [Value], usize, usize) + Send + Sync>;

/// Builds the columnar fast-path filler: a direct strided copy out of a
/// shared raw column, one virtual call per (field, morsel). Used by the
/// binary column plug-in, the cache plug-in and the engine's cache-served
/// scan accessors.
pub fn column_batch_fill(column: Arc<proteus_storage::ColumnData>) -> BatchFill {
    Arc::new(move |start, count, out: &mut [Value], base, stride| {
        column.fill_values(start as usize, count, out, base, stride)
    })
}

// ---------------------------------------------------------------------------
// Typed morsel columns: the vectorized scan path.
// ---------------------------------------------------------------------------

/// Element type of a [`TypedColumn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypedKind {
    /// 64-bit integers (also carries date fields, which the specialized
    /// accessors already render as plain integers).
    I64,
    /// 64-bit floats.
    F64,
    /// Booleans.
    Bool,
    /// Interned UTF-8 strings.
    Str,
}

/// Typed backing storage of one morsel column.
#[derive(Debug, Clone)]
enum TypedData {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Vec<bool>),
    /// Interned strings: `ids[i]` indexes into the per-morsel `pool` of
    /// unique strings, so predicates compare each distinct string once per
    /// morsel instead of once per row.
    Str {
        ids: Vec<u32>,
        pool: Vec<Arc<str>>,
    },
}

/// A typed, reusable column of one morsel's values for a single batch slot,
/// with a null bitmap. Plug-ins fill these directly from their raw data —
/// binary/cached columnar data never round-trips through [`Value`] — and the
/// vectorized predicate kernels evaluate over them column-at-a-time.
///
/// Values at null positions hold an arbitrary placeholder (0 / 0.0 / false /
/// pool id 0); consumers must consult [`TypedColumn::is_null`].
#[derive(Debug, Clone)]
pub struct TypedColumn {
    data: TypedData,
    /// Null bitmap, one bit per row (bit set = null). Empty when the morsel
    /// has no nulls.
    nulls: Vec<u64>,
    len: usize,
    /// Interning map recycled across morsels (only used for `Str` columns).
    intern: std::collections::HashMap<Arc<str>, u32>,
}

impl TypedColumn {
    /// Creates an empty column of the given kind.
    pub fn new(kind: TypedKind) -> TypedColumn {
        TypedColumn {
            data: match kind {
                TypedKind::I64 => TypedData::I64(Vec::new()),
                TypedKind::F64 => TypedData::F64(Vec::new()),
                TypedKind::Bool => TypedData::Bool(Vec::new()),
                TypedKind::Str => TypedData::Str {
                    ids: Vec::new(),
                    pool: Vec::new(),
                },
            },
            nulls: Vec::new(),
            len: 0,
            intern: std::collections::HashMap::new(),
        }
    }

    /// Resets the column for a new morsel of (up to) `rows` values, recycling
    /// the existing buffers when the kind is unchanged.
    pub fn begin(&mut self, kind: TypedKind, rows: usize) {
        if self.kind() != kind {
            *self = TypedColumn::new(kind);
        }
        match &mut self.data {
            TypedData::I64(v) => {
                v.clear();
                v.reserve(rows);
            }
            TypedData::F64(v) => {
                v.clear();
                v.reserve(rows);
            }
            TypedData::Bool(v) => {
                v.clear();
                v.reserve(rows);
            }
            TypedData::Str { ids, pool } => {
                ids.clear();
                ids.reserve(rows);
                pool.clear();
                self.intern.clear();
            }
        }
        self.nulls.clear();
        self.len = 0;
    }

    /// The column's element kind.
    pub fn kind(&self) -> TypedKind {
        match &self.data {
            TypedData::I64(_) => TypedKind::I64,
            TypedData::F64(_) => TypedKind::F64,
            TypedData::Bool(_) => TypedKind::Bool,
            TypedData::Str { .. } => TypedKind::Str,
        }
    }

    /// Number of values appended since [`TypedColumn::begin`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values were appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when any null was appended.
    pub fn has_nulls(&self) -> bool {
        !self.nulls.is_empty()
    }

    /// True when row `i` is null.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls
            .get(i >> 6)
            .is_some_and(|word| word >> (i & 63) & 1 == 1)
    }

    /// The packed null-bitmap words: bit `i & 63` of word `i >> 6` is set
    /// when row `i` is null. The vector may be *shorter* than
    /// `len().div_ceil(64)` — it only grows up to the word of the last null
    /// pushed, and missing words mean "no nulls there". This is the same
    /// word layout as the kernel selection masks in `proteus-core`
    /// (`exec::mask`), so null propagation into a predicate mask is a
    /// word-wise `OR` / `AND NOT` of this slice — no per-row [`TypedColumn::is_null`]
    /// calls on the kernel path.
    #[inline]
    pub fn null_words(&self) -> &[u64] {
        &self.nulls
    }

    fn set_null_bit(&mut self, i: usize) {
        let word = i >> 6;
        if self.nulls.len() <= word {
            self.nulls.resize(word + 1, 0);
        }
        self.nulls[word] |= 1 << (i & 63);
    }

    /// Appends an integer.
    #[inline]
    pub fn push_i64(&mut self, v: i64) {
        match &mut self.data {
            TypedData::I64(vec) => vec.push(v),
            _ => unreachable!("push_i64 on a non-I64 typed column"),
        }
        self.len += 1;
    }

    /// Appends a float.
    #[inline]
    pub fn push_f64(&mut self, v: f64) {
        match &mut self.data {
            TypedData::F64(vec) => vec.push(v),
            _ => unreachable!("push_f64 on a non-F64 typed column"),
        }
        self.len += 1;
    }

    /// Appends a boolean.
    #[inline]
    pub fn push_bool(&mut self, v: bool) {
        match &mut self.data {
            TypedData::Bool(vec) => vec.push(v),
            _ => unreachable!("push_bool on a non-Bool typed column"),
        }
        self.len += 1;
    }

    /// Appends a string, interning it into the morsel pool.
    pub fn push_str(&mut self, s: &str) {
        let TypedData::Str { ids, pool } = &mut self.data else {
            unreachable!("push_str on a non-Str typed column");
        };
        let id = match self.intern.get(s) {
            Some(id) => *id,
            None => {
                let id = pool.len() as u32;
                let shared: Arc<str> = Arc::from(s);
                pool.push(shared.clone());
                self.intern.insert(shared, id);
                id
            }
        };
        ids.push(id);
        self.len += 1;
    }

    /// Appends a null (a placeholder value plus a null bit).
    pub fn push_null(&mut self) {
        let at = self.len;
        match &mut self.data {
            TypedData::I64(vec) => vec.push(0),
            TypedData::F64(vec) => vec.push(0.0),
            TypedData::Bool(vec) => vec.push(false),
            TypedData::Str { ids, pool } => {
                if pool.is_empty() {
                    let shared: Arc<str> = Arc::from("");
                    pool.push(shared.clone());
                    self.intern.insert(shared, 0);
                }
                ids.push(0);
            }
        }
        self.len += 1;
        self.set_null_bit(at);
    }

    /// Bulk-appends a non-null integer slice (the binary/cache fast path).
    pub fn extend_i64(&mut self, values: &[i64]) {
        match &mut self.data {
            TypedData::I64(vec) => vec.extend_from_slice(values),
            _ => unreachable!("extend_i64 on a non-I64 typed column"),
        }
        self.len += values.len();
    }

    /// Bulk-appends a non-null float slice.
    pub fn extend_f64(&mut self, values: &[f64]) {
        match &mut self.data {
            TypedData::F64(vec) => vec.extend_from_slice(values),
            _ => unreachable!("extend_f64 on a non-F64 typed column"),
        }
        self.len += values.len();
    }

    /// Bulk-appends a non-null bool slice.
    pub fn extend_bool(&mut self, values: &[bool]) {
        match &mut self.data {
            TypedData::Bool(vec) => vec.extend_from_slice(values),
            _ => unreachable!("extend_bool on a non-Bool typed column"),
        }
        self.len += values.len();
    }

    /// The integer values (placeholders at null positions).
    pub fn i64_values(&self) -> &[i64] {
        match &self.data {
            TypedData::I64(v) => v,
            _ => unreachable!("i64_values on a non-I64 typed column"),
        }
    }

    /// The float values (placeholders at null positions).
    pub fn f64_values(&self) -> &[f64] {
        match &self.data {
            TypedData::F64(v) => v,
            _ => unreachable!("f64_values on a non-F64 typed column"),
        }
    }

    /// The bool values (placeholders at null positions).
    pub fn bool_values(&self) -> &[bool] {
        match &self.data {
            TypedData::Bool(v) => v,
            _ => unreachable!("bool_values on a non-Bool typed column"),
        }
    }

    /// The per-row pool ids and the unique-string pool of a `Str` column.
    pub fn str_parts(&self) -> (&[u32], &[Arc<str>]) {
        match &self.data {
            TypedData::Str { ids, pool } => (ids, pool),
            _ => unreachable!("str_parts on a non-Str typed column"),
        }
    }

    /// Materializes row `i` as a [`Value`] (the hydration path for rows that
    /// survive the vectorized selection).
    pub fn value_at(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            TypedData::I64(v) => Value::Int(v[i]),
            TypedData::F64(v) => Value::Float(v[i]),
            TypedData::Bool(v) => Value::Bool(v[i]),
            TypedData::Str { ids, pool } => Value::Str(pool[ids[i] as usize].to_string()),
        }
    }
}

/// A typed morsel filler for one field: renders the values of objects
/// `start..start + count` into a [`TypedColumn`] (calling
/// [`TypedColumn::begin`] itself), never materializing intermediate
/// [`Value`]s. Plug-ins advertise these only for fields whose raw data can be
/// rendered typed; the planner activates them for slots referenced by
/// kernel-eligible predicates.
pub type TypedFill = Arc<dyn Fn(Oid, usize, &mut TypedColumn) + Send + Sync>;

/// Builds the columnar typed filler over a shared raw column: a direct slice
/// append for numeric/bool data, per-morsel interning for strings.
pub fn column_typed_fill(column: Arc<proteus_storage::ColumnData>) -> (TypedKind, TypedFill) {
    use proteus_storage::ColumnData;
    let kind = match column.as_ref() {
        ColumnData::Int(_) => TypedKind::I64,
        ColumnData::Float(_) => TypedKind::F64,
        ColumnData::Bool(_) => TypedKind::Bool,
        ColumnData::Str(_) => TypedKind::Str,
    };
    let fill: TypedFill = Arc::new(move |start, count, out: &mut TypedColumn| {
        let start = start as usize;
        out.begin(kind, count);
        match column.as_ref() {
            ColumnData::Int(v) => out.extend_i64(&v[start..start + count]),
            ColumnData::Float(v) => out.extend_f64(&v[start..start + count]),
            ColumnData::Bool(v) => out.extend_bool(&v[start..start + count]),
            ColumnData::Str(v) => {
                for s in &v[start..start + count] {
                    out.push_str(s);
                }
            }
        }
    });
    (kind, fill)
}

impl std::fmt::Debug for FieldAccessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            FieldAccessor::Int(_) => "Int",
            FieldAccessor::Float(_) => "Float",
            FieldAccessor::Bool(_) => "Bool",
            FieldAccessor::Str(_) => "Str",
            FieldAccessor::Generic(_) => "Generic",
        };
        write!(f, "FieldAccessor::{kind}")
    }
}

/// What a plug-in hands to the scan operator of the generated engine: the
/// number of objects to scan and one specialized accessor per requested
/// field (the "virtual memory buffers" get filled from these).
#[derive(Clone)]
pub struct ScanAccessors {
    /// Number of objects (tuples) the scan will produce.
    pub row_count: u64,
    /// `(field name, accessor)` pairs in the order they were requested.
    pub fields: Vec<(String, FieldAccessor)>,
    /// `(field name, morsel filler)` pairs: the batched scan path. Same
    /// order as `fields`; plug-ins with a native columnar layout install
    /// direct-copy fillers, everyone else wraps the accessor.
    pub batch_fields: Vec<(String, BatchFill)>,
    /// `(field name, kind, typed filler)` for the fields this plug-in can
    /// render directly into a [`TypedColumn`] (the vectorized scan path).
    /// Empty for plug-ins without typed support; a typed filler must produce
    /// exactly the values the corresponding `batch_fields` filler would
    /// (nulls ↔ `Value::Null`), so the kernel and closure paths agree.
    pub typed_fields: Vec<(String, TypedKind, TypedFill)>,
    /// Human-readable description of the access path the plug-in chose
    /// (shows up in the emitted pseudo-IR, e.g. `"csv(structural-index N=8)"`).
    pub access_path: String,
    /// Rows the plug-in skipped or nulled at registration under a lenient
    /// [`BadRowPolicy`]; the executor folds this into
    /// `ExecutionMetrics::bad_rows` for queries over the dataset.
    pub bad_rows: u64,
}

impl ScanAccessors {
    /// Builds accessors with the generic per-accessor batch fillers, and
    /// typed fillers derived from the same specialized accessors (so the
    /// vectorized and row-major paths cannot drift apart).
    pub fn from_accessors(
        row_count: u64,
        fields: Vec<(String, FieldAccessor)>,
        access_path: impl Into<String>,
    ) -> ScanAccessors {
        let batch_fields = fields
            .iter()
            .map(|(name, accessor)| (name.clone(), accessor.batch_fill()))
            .collect();
        let typed_fields = fields
            .iter()
            .filter_map(|(name, accessor)| {
                accessor
                    .typed_fill()
                    .map(|(kind, fill)| (name.clone(), kind, fill))
            })
            .collect();
        ScanAccessors {
            row_count,
            fields,
            batch_fields,
            typed_fields,
            access_path: access_path.into(),
            bad_rows: 0,
        }
    }

    /// Records the dataset's registration-time bad-row count on these
    /// accessors (builder style, used by the plug-ins' `generate()`).
    pub fn with_bad_rows(mut self, bad_rows: u64) -> ScanAccessors {
        self.bad_rows = bad_rows;
        self
    }

    /// Looks up the accessor generated for a field.
    pub fn field(&self, name: &str) -> Option<&FieldAccessor> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, a)| a)
    }

    /// Looks up the morsel filler generated for a field.
    pub fn batch_field(&self, name: &str) -> Option<&BatchFill> {
        self.batch_fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f)
    }

    /// Looks up the typed morsel filler generated for a field, if any.
    pub fn typed_field(&self, name: &str) -> Option<(TypedKind, &TypedFill)> {
        self.typed_fields
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, kind, f)| (*kind, f))
    }
}

impl std::fmt::Debug for ScanAccessors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanAccessors")
            .field("row_count", &self.row_count)
            .field("fields", &self.fields)
            .field("access_path", &self.access_path)
            .finish()
    }
}

/// Cursor over a nested collection, produced by `unnest_init`.
///
/// The paper splits this into `unnestInit()` / `unnestHasNext()` /
/// `unnestGetNext()`; the cursor carries the same state machine.
#[derive(Debug)]
pub struct UnnestCursor {
    items: Vec<Value>,
    position: usize,
}

impl UnnestCursor {
    /// Creates a cursor over already-extracted collection elements.
    pub fn new(items: Vec<Value>) -> Self {
        UnnestCursor { items, position: 0 }
    }

    /// `unnestHasNext()`.
    pub fn has_next(&self) -> bool {
        self.position < self.items.len()
    }

    /// `unnestGetNext()`.
    pub fn get_next(&mut self) -> Option<Value> {
        let item = self.items.get(self.position).cloned();
        if item.is_some() {
            self.position += 1;
        }
        item
    }

    /// Number of elements remaining.
    pub fn remaining(&self) -> usize {
        self.items.len() - self.position
    }
}

impl Iterator for UnnestCursor {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        self.get_next()
    }
}

/// The input plug-in interface (Table 2).
pub trait InputPlugin: Send + Sync {
    /// The dataset this plug-in serves.
    fn dataset(&self) -> &str;

    /// The data format the plug-in encapsulates.
    fn format(&self) -> SourceFormat;

    /// The dataset schema (possibly inferred).
    fn schema(&self) -> &Schema;

    /// Number of data objects in the dataset.
    fn len(&self) -> u64;

    /// True if the dataset has no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `generate()`: builds the specialized scan accessors for the requested
    /// fields, choosing the most appropriate access path for this dataset
    /// instance (structural index, deterministic layout, raw columns, ...).
    fn generate(&self, fields: &[String]) -> Result<ScanAccessors>;

    /// `readValue()`: generic single-value access by OID and field name.
    fn read_value(&self, oid: Oid, field: &str) -> Result<Value>;

    /// `readPath()`: navigates a (possibly nested) path within the object
    /// identified by `oid`.
    fn read_path(&self, oid: Oid, path: &[String]) -> Result<Value>;

    /// `unnestInit()` + `unnestHasNext()`/`unnestGetNext()`: returns a cursor
    /// over the nested collection at `path` within the object.
    fn unnest_init(&self, oid: Oid, path: &[String]) -> Result<UnnestCursor>;

    /// `hashValue()`: a stable hash of a field value, used by the radix
    /// join/grouping operators.
    fn hash_value(&self, oid: Oid, field: &str) -> Result<u64> {
        Ok(self.read_value(oid, field)?.stable_hash())
    }

    /// `flushValue()`: renders a field value into the query output buffer.
    fn flush_value(&self, oid: Oid, field: &str, out: &mut String) -> Result<()> {
        let v = self.read_value(oid, field)?;
        out.push_str(&v.to_string());
        Ok(())
    }

    /// Dataset statistics for the optimizer (collected on first/cold access).
    fn statistics(&self) -> DatasetStats;

    /// The plug-in's cost profile: per-tuple and per-field access cost
    /// factors the optimizer plugs into its cost formulas.
    fn cost_profile(&self) -> CostProfile;

    /// Per-morsel zone maps for the requested fields, building/deriving them
    /// if needed (the engine calls this at compile time when morsel skipping
    /// is enabled). Binary columns and caches answer from maps recorded at
    /// registration / cache-build time; CSV/JSON derive them once from their
    /// typed fills and memoize. The default — no zone maps — simply disables
    /// skipping for the plug-in's scans.
    fn zone_maps(&self, fields: &[String]) -> Vec<(String, Arc<crate::zonemap::ZoneMap>)> {
        let _ = fields;
        Vec::new()
    }

    /// Zone maps that are already materialized, without triggering any
    /// derivation work (the catalog snapshots these for observed-bounds
    /// selectivity estimation).
    fn cached_zone_maps(&self) -> Vec<(String, Arc<crate::zonemap::ZoneMap>)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessor_value_conversions() {
        let acc = FieldAccessor::Int(Arc::new(|oid| oid as i64 * 2));
        assert_eq!(acc.value(3), Value::Int(6));
        assert_eq!(acc.as_f64(3), 6.0);
        assert_eq!(acc.as_i64(3), 6);
        assert!(acc.is_specialized_numeric());

        let acc = FieldAccessor::Str(Arc::new(|oid| format!("s{oid}")));
        assert_eq!(acc.value(1), Value::Str("s1".into()));
        assert!(!acc.is_specialized_numeric());
        assert!(acc.as_f64(1).is_nan());
    }

    #[test]
    fn generic_accessor_numeric_views() {
        let acc = FieldAccessor::Generic(Arc::new(|oid| Value::Float(oid as f64 + 0.5)));
        assert_eq!(acc.as_f64(2), 2.5);
        assert_eq!(acc.as_i64(2), 2);
    }

    #[test]
    fn scan_accessors_field_lookup() {
        let scan = ScanAccessors::from_accessors(
            10,
            vec![(
                "x".to_string(),
                FieldAccessor::Int(Arc::new(|oid| oid as i64)),
            )],
            "test",
        );
        assert!(scan.field("x").is_some());
        assert!(scan.field("y").is_none());
        assert!(scan.batch_field("x").is_some());
        assert!(scan.batch_field("y").is_none());
    }

    #[test]
    fn batch_fill_matches_per_tuple_accessor() {
        let accessor = FieldAccessor::Int(Arc::new(|oid| oid as i64 * 3));
        let fill = accessor.batch_fill();
        // Strided destination: width-2 rows, slot 1.
        let mut out = vec![Value::Null; 8];
        fill(5, 4, &mut out, 1, 2);
        for i in 0..4u64 {
            assert_eq!(out[1 + i as usize * 2], accessor.value(5 + i));
            assert_eq!(out[i as usize * 2], Value::Null);
        }
    }

    #[test]
    fn unnest_cursor_state_machine() {
        let mut cursor = UnnestCursor::new(vec![Value::Int(1), Value::Int(2)]);
        assert!(cursor.has_next());
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.get_next(), Some(Value::Int(1)));
        assert_eq!(cursor.get_next(), Some(Value::Int(2)));
        assert!(!cursor.has_next());
        assert_eq!(cursor.get_next(), None);
    }

    #[test]
    fn unnest_cursor_is_an_iterator() {
        let cursor = UnnestCursor::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let collected: Vec<Value> = cursor.collect();
        assert_eq!(collected.len(), 3);
    }
}
