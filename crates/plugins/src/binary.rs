//! Input plug-ins for relational binary data (row- and column-oriented).
//!
//! §5.2: "For binary relational data, an input plug-in generates code reading
//! the memory positions of the required data fields." The column plug-in
//! wraps a [`ColumnTable`] directory (binary column files "similar to the
//! ones of MonetDB"); the row plug-in wraps a [`RowTableReader`] and computes
//! field positions with fixed-stride address arithmetic.

use std::collections::HashMap;
use std::sync::Arc;

use proteus_algebra::{DataType, Schema, Value};
use proteus_storage::{ColumnData, ColumnTable, MemoryManager, RowTableReader, SourceFormat};

use crate::api::{FieldAccessor, InputPlugin, Oid, ScanAccessors, UnnestCursor};
use crate::error::{PluginError, Result};
use crate::stats::{CostProfile, DatasetStats, StatsCollector};
use crate::zonemap::ZoneMap;

// ---------------------------------------------------------------------------
// Column-oriented plug-in.
// ---------------------------------------------------------------------------

struct ColumnInner {
    dataset: String,
    schema: Schema,
    row_count: u64,
    columns: HashMap<String, Arc<ColumnData>>,
    stats: DatasetStats,
    /// Per-morsel zone maps, recorded once at registration time. The
    /// dataset-level `stats` above are aggregated from these.
    zone_maps: HashMap<String, Arc<ZoneMap>>,
}

/// Plug-in over binary column files.
#[derive(Clone)]
pub struct ColumnPlugin {
    inner: Arc<ColumnInner>,
}

impl ColumnPlugin {
    /// Opens a column-table directory, loading every column eagerly (the
    /// files are binary and compact; the paper's experiments run over warm
    /// OS caches).
    pub fn open(
        dataset: impl Into<String>,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<ColumnPlugin> {
        let table = ColumnTable::open(dir)?;
        let mut columns = HashMap::new();
        for field in table.schema.fields() {
            columns.insert(
                field.name.clone(),
                Arc::new(table.read_column(&field.name)?),
            );
        }
        Self::from_columns(dataset, table.schema.clone(), columns)
    }

    /// Builds a plug-in from already-materialized columns.
    pub fn from_columns(
        dataset: impl Into<String>,
        schema: Schema,
        columns: HashMap<String, Arc<ColumnData>>,
    ) -> Result<ColumnPlugin> {
        let dataset = dataset.into();
        let row_count = columns.values().next().map(|c| c.len() as u64).unwrap_or(0);
        for (name, col) in &columns {
            if col.len() as u64 != row_count {
                return Err(PluginError::Malformed {
                    dataset,
                    detail: format!("column {name} length mismatch"),
                });
            }
        }
        // One registration-time pass per column records the per-morsel zone
        // maps; the dataset-level statistics are aggregated from the same
        // pass (no separate min/max scan).
        let zone_maps: HashMap<String, Arc<ZoneMap>> = columns
            .iter()
            .map(|(name, col)| (name.clone(), Arc::new(ZoneMap::from_column(col))))
            .collect();
        let mut stats = DatasetStats::with_cardinality(row_count);
        for field in schema.fields() {
            if !field.data_type.is_numeric() {
                continue;
            }
            if let Some(zm) = zone_maps.get(&field.name) {
                stats
                    .columns
                    .insert(field.name.clone(), zm.column_stats().clone());
            }
        }
        Ok(ColumnPlugin {
            inner: Arc::new(ColumnInner {
                dataset,
                schema,
                row_count,
                columns,
                stats,
                zone_maps,
            }),
        })
    }

    /// Builds a plug-in directly from `(name, column)` pairs (used by the
    /// data generators and tests).
    pub fn from_pairs(
        dataset: impl Into<String>,
        pairs: Vec<(String, ColumnData)>,
    ) -> Result<ColumnPlugin> {
        let schema = Schema::new(
            pairs
                .iter()
                .map(|(n, c)| proteus_algebra::Field::new(n.clone(), c.data_type()))
                .collect(),
        );
        let columns = pairs.into_iter().map(|(n, c)| (n, Arc::new(c))).collect();
        Self::from_columns(dataset, schema, columns)
    }

    /// Shared handle to one raw column (used by the column-store baselines so
    /// that every engine reads the same buffers).
    pub fn column(&self, name: &str) -> Option<Arc<ColumnData>> {
        self.inner.columns.get(name).cloned()
    }
}

impl InputPlugin for ColumnPlugin {
    fn dataset(&self) -> &str {
        &self.inner.dataset
    }

    fn format(&self) -> SourceFormat {
        SourceFormat::Binary
    }

    fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    fn len(&self) -> u64 {
        self.inner.row_count
    }

    fn generate(&self, fields: &[String]) -> Result<ScanAccessors> {
        crate::fault::check("binary.decode").map_err(|detail| PluginError::Malformed {
            dataset: self.inner.dataset.clone(),
            detail,
        })?;
        let mut accessors = Vec::with_capacity(fields.len());
        let mut batch_fields = Vec::with_capacity(fields.len());
        let mut typed_fields = Vec::with_capacity(fields.len());
        for field in fields {
            let column = self.inner.columns.get(field).cloned().ok_or_else(|| {
                PluginError::UnknownField {
                    dataset: self.inner.dataset.clone(),
                    field: field.clone(),
                }
            })?;
            // Morsel path: a direct strided copy out of the raw column, one
            // virtual call per (field, morsel).
            batch_fields.push((field.clone(), crate::api::column_batch_fill(column.clone())));
            // Vectorized path: the same raw column appended straight into a
            // typed morsel column, no Value boxing at all.
            let (kind, typed) = crate::api::column_typed_fill(column.clone());
            typed_fields.push((field.clone(), kind, typed));
            let accessor = match column.as_ref() {
                ColumnData::Int(_) => {
                    let col = column.clone();
                    FieldAccessor::Int(Arc::new(move |oid| match col.as_ref() {
                        ColumnData::Int(v) => v[oid as usize],
                        _ => unreachable!(),
                    }))
                }
                ColumnData::Float(_) => {
                    let col = column.clone();
                    FieldAccessor::Float(Arc::new(move |oid| match col.as_ref() {
                        ColumnData::Float(v) => v[oid as usize],
                        _ => unreachable!(),
                    }))
                }
                ColumnData::Bool(_) => {
                    let col = column.clone();
                    FieldAccessor::Bool(Arc::new(move |oid| match col.as_ref() {
                        ColumnData::Bool(v) => v[oid as usize],
                        _ => unreachable!(),
                    }))
                }
                ColumnData::Str(_) => {
                    let col = column.clone();
                    FieldAccessor::Str(Arc::new(move |oid| match col.as_ref() {
                        ColumnData::Str(v) => v[oid as usize].clone(),
                        _ => unreachable!(),
                    }))
                }
            };
            accessors.push((field.clone(), accessor));
        }
        Ok(crate::fault::instrument_scan(
            ScanAccessors {
                row_count: self.len(),
                fields: accessors,
                batch_fields,
                typed_fields,
                access_path: "binary-columns(direct positional reads)".into(),
                bad_rows: 0,
            },
            "binary.decode",
        ))
    }

    fn read_value(&self, oid: Oid, field: &str) -> Result<Value> {
        let column = self
            .inner
            .columns
            .get(field)
            .ok_or_else(|| PluginError::UnknownField {
                dataset: self.inner.dataset.clone(),
                field: field.to_string(),
            })?;
        column
            .value_at(oid as usize)
            .ok_or(PluginError::OidOutOfRange {
                dataset: self.inner.dataset.clone(),
                oid,
            })
    }

    fn read_path(&self, oid: Oid, path: &[String]) -> Result<Value> {
        match path {
            [field] => self.read_value(oid, field),
            _ => Err(PluginError::Unsupported(
                "binary relational data has no nested paths".into(),
            )),
        }
    }

    fn unnest_init(&self, _oid: Oid, _path: &[String]) -> Result<UnnestCursor> {
        Err(PluginError::Unsupported(
            "binary relational data has no nested collections".into(),
        ))
    }

    fn statistics(&self) -> DatasetStats {
        self.inner.stats.clone()
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::binary()
    }

    fn zone_maps(&self, fields: &[String]) -> Vec<(String, Arc<ZoneMap>)> {
        fields
            .iter()
            .filter_map(|f| {
                self.inner
                    .zone_maps
                    .get(f)
                    .map(|zm| (f.clone(), zm.clone()))
            })
            .collect()
    }

    fn cached_zone_maps(&self) -> Vec<(String, Arc<ZoneMap>)> {
        self.inner
            .zone_maps
            .iter()
            .map(|(n, zm)| (n.clone(), zm.clone()))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Row-oriented plug-in.
// ---------------------------------------------------------------------------

struct RowInner {
    dataset: String,
    reader: RowTableReader,
    stats: DatasetStats,
}

/// Plug-in over the binary row format.
#[derive(Clone)]
pub struct RowPlugin {
    inner: Arc<RowInner>,
}

impl RowPlugin {
    /// Opens a binary row file through the memory manager.
    pub fn open(
        dataset: impl Into<String>,
        path: impl AsRef<std::path::Path>,
        memory: &MemoryManager,
    ) -> Result<RowPlugin> {
        let data = memory.map_file(path)?;
        let reader = RowTableReader::open(data)?;
        Ok(Self::from_reader(dataset, reader))
    }

    /// Builds a plug-in from an already-open reader.
    pub fn from_reader(dataset: impl Into<String>, reader: RowTableReader) -> RowPlugin {
        let dataset = dataset.into();
        let stats = row_stats(&reader);
        RowPlugin {
            inner: Arc::new(RowInner {
                dataset,
                reader,
                stats,
            }),
        }
    }

    fn field_index(&self, field: &str) -> Result<usize> {
        self.inner
            .reader
            .schema()
            .index_of(field)
            .ok_or_else(|| PluginError::UnknownField {
                dataset: self.inner.dataset.clone(),
                field: field.to_string(),
            })
    }
}

fn row_stats(reader: &RowTableReader) -> DatasetStats {
    let mut stats = DatasetStats::with_cardinality(reader.row_count() as u64);
    for (idx, field) in reader.schema().fields().iter().enumerate() {
        if !field.data_type.is_numeric() {
            continue;
        }
        let mut collector = StatsCollector::new();
        for row in 0..reader.row_count() {
            if let Ok(v) = reader.read_value(row, idx) {
                collector.observe(&v);
            }
        }
        stats.columns.insert(field.name.clone(), collector.finish());
    }
    stats
}

impl InputPlugin for RowPlugin {
    fn dataset(&self) -> &str {
        &self.inner.dataset
    }

    fn format(&self) -> SourceFormat {
        SourceFormat::Binary
    }

    fn schema(&self) -> &Schema {
        self.inner.reader.schema()
    }

    fn len(&self) -> u64 {
        self.inner.reader.row_count() as u64
    }

    fn generate(&self, fields: &[String]) -> Result<ScanAccessors> {
        crate::fault::check("binary.decode").map_err(|detail| PluginError::Malformed {
            dataset: self.inner.dataset.clone(),
            detail,
        })?;
        let mut accessors = Vec::with_capacity(fields.len());
        for field in fields {
            let field_idx = self.field_index(field)?;
            let data_type = self
                .inner
                .reader
                .schema()
                .field_at(field_idx)
                .ok_or_else(|| PluginError::UnknownField {
                    dataset: self.inner.dataset.clone(),
                    field: field.clone(),
                })?
                .data_type
                .clone();
            let plugin = self.clone();
            let accessor = match data_type {
                DataType::Int | DataType::Date => FieldAccessor::Int(Arc::new(move |oid| {
                    plugin.inner.reader.read_int(oid as usize, field_idx)
                })),
                DataType::Float => FieldAccessor::Float(Arc::new(move |oid| {
                    plugin.inner.reader.read_float(oid as usize, field_idx)
                })),
                DataType::Bool => FieldAccessor::Bool(Arc::new(move |oid| {
                    plugin.inner.reader.read_bool(oid as usize, field_idx)
                })),
                _ => FieldAccessor::Str(Arc::new(move |oid| {
                    plugin
                        .inner
                        .reader
                        .read_str(oid as usize, field_idx)
                        .unwrap_or_default()
                        .to_string()
                })),
            };
            accessors.push((field.clone(), accessor));
        }
        Ok(crate::fault::instrument_scan(
            ScanAccessors::from_accessors(
                self.len(),
                accessors,
                "binary-rows(fixed-stride positions)",
            ),
            "binary.decode",
        ))
    }

    fn read_value(&self, oid: Oid, field: &str) -> Result<Value> {
        let idx = self.field_index(field)?;
        self.inner
            .reader
            .read_value(oid as usize, idx)
            .map_err(PluginError::from)
    }

    fn read_path(&self, oid: Oid, path: &[String]) -> Result<Value> {
        match path {
            [field] => self.read_value(oid, field),
            _ => Err(PluginError::Unsupported(
                "binary relational data has no nested paths".into(),
            )),
        }
    }

    fn unnest_init(&self, _oid: Oid, _path: &[String]) -> Result<UnnestCursor> {
        Err(PluginError::Unsupported(
            "binary relational data has no nested collections".into(),
        ))
    }

    fn statistics(&self) -> DatasetStats {
        self.inner.stats.clone()
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::binary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_storage::RowTable;

    fn column_plugin() -> ColumnPlugin {
        ColumnPlugin::from_pairs(
            "lineitem",
            vec![
                (
                    "l_orderkey".to_string(),
                    ColumnData::Int((0..100).collect()),
                ),
                (
                    "l_quantity".to_string(),
                    ColumnData::Float((0..100).map(|i| i as f64 * 0.5).collect()),
                ),
                (
                    "l_comment".to_string(),
                    ColumnData::Str((0..100).map(|i| format!("c{i}")).collect()),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_plugin_reads_values() {
        let p = column_plugin();
        assert_eq!(p.len(), 100);
        assert_eq!(p.format(), SourceFormat::Binary);
        assert_eq!(p.read_value(7, "l_orderkey").unwrap(), Value::Int(7));
        assert_eq!(p.read_value(4, "l_quantity").unwrap(), Value::Float(2.0));
        assert_eq!(
            p.read_value(3, "l_comment").unwrap(),
            Value::Str("c3".into())
        );
        assert!(p.read_value(1000, "l_orderkey").is_err());
        assert!(p.read_value(0, "ghost").is_err());
    }

    #[test]
    fn column_accessors_are_specialized() {
        let p = column_plugin();
        let scan = p
            .generate(&["l_orderkey".to_string(), "l_quantity".to_string()])
            .unwrap();
        assert!(scan.field("l_orderkey").unwrap().is_specialized_numeric());
        assert_eq!(scan.field("l_orderkey").unwrap().as_i64(42), 42);
        assert_eq!(scan.field("l_quantity").unwrap().as_f64(10), 5.0);
    }

    #[test]
    fn column_stats_have_min_max() {
        let p = column_plugin();
        let stats = p.statistics();
        assert_eq!(stats.cardinality, 100);
        assert_eq!(stats.column("l_orderkey").unwrap().min, Value::Int(0));
        assert_eq!(stats.column("l_orderkey").unwrap().max, Value::Int(99));
    }

    #[test]
    fn mismatched_column_lengths_rejected() {
        let result = ColumnPlugin::from_pairs(
            "bad",
            vec![
                ("a".to_string(), ColumnData::Int(vec![1, 2])),
                ("b".to_string(), ColumnData::Int(vec![1])),
            ],
        );
        assert!(result.is_err());
    }

    fn row_plugin() -> RowPlugin {
        let dir = std::env::temp_dir().join("proteus_row_plugin_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("orders.prow");
        let schema = Schema::from_pairs(vec![
            ("o_orderkey", DataType::Int),
            ("o_totalprice", DataType::Float),
            ("o_comment", DataType::String),
        ]);
        let rows: Vec<Value> = (0..50)
            .map(|i| {
                Value::record(vec![
                    ("o_orderkey", Value::Int(i)),
                    ("o_totalprice", Value::Float(i as f64 * 100.0)),
                    ("o_comment", Value::Str(format!("order {i}"))),
                ])
            })
            .collect();
        RowTable::write(&path, &schema, &rows).unwrap();
        RowPlugin::open("orders", &path, &MemoryManager::new()).unwrap()
    }

    #[test]
    fn row_plugin_reads_values_and_accessors_agree() {
        let p = row_plugin();
        assert_eq!(p.len(), 50);
        assert_eq!(p.read_value(9, "o_orderkey").unwrap(), Value::Int(9));
        assert_eq!(
            p.read_value(9, "o_comment").unwrap(),
            Value::Str("order 9".into())
        );
        let scan = p
            .generate(&["o_orderkey".to_string(), "o_totalprice".to_string()])
            .unwrap();
        for oid in 0..50u64 {
            assert_eq!(
                Value::Int(scan.field("o_orderkey").unwrap().as_i64(oid)),
                p.read_value(oid, "o_orderkey").unwrap()
            );
            assert_eq!(
                Value::Float(scan.field("o_totalprice").unwrap().as_f64(oid)),
                p.read_value(oid, "o_totalprice").unwrap()
            );
        }
    }

    #[test]
    fn row_plugin_rejects_nested_access() {
        let p = row_plugin();
        assert!(p.unnest_init(0, &["items".to_string()]).is_err());
        assert!(p.read_path(0, &["a".to_string(), "b".to_string()]).is_err());
    }

    #[test]
    fn row_stats_cover_numeric_fields() {
        let p = row_plugin();
        let stats = p.statistics();
        assert_eq!(stats.cardinality, 50);
        assert_eq!(stats.column("o_orderkey").unwrap().max, Value::Int(49));
        assert!(stats.column("o_comment").is_none());
    }
}
