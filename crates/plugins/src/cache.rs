//! The cache input plug-in.
//!
//! §6: "Proteus exposes the data cache as an additional input. As with the
//! rest of the datasets, Proteus accesses the cached data using a dedicated
//! input plug-in." A cache entry holds binary columns of already-evaluated
//! expressions plus the OIDs of the source objects they came from, so a query
//! rewritten to use the cache reads packed binary values instead of
//! re-navigating a verbose file.

use std::sync::Arc;

use proteus_algebra::{Field, Schema, Value};
use proteus_storage::{CacheEntry, CacheStore, ColumnData, SourceFormat};

use std::collections::HashMap;

use crate::api::{FieldAccessor, InputPlugin, Oid, ScanAccessors, UnnestCursor};
use crate::error::{PluginError, Result};
use crate::stats::{CostProfile, DatasetStats};
use crate::zonemap::ZoneMap;

struct CacheInner {
    /// Shared handle: the store may replace or invalidate the entry while
    /// this plug-in (and the query holding it) keeps reading the old data.
    entry: Arc<CacheEntry>,
    schema: Schema,
    /// Per-morsel zone maps over the cached binary columns (derived once
    /// and parked in the store's sidecar slot so repeated queries reuse
    /// them; dropped atomically with the entry on invalidation).
    zone_maps: Arc<HashMap<String, Arc<ZoneMap>>>,
    stats: DatasetStats,
}

/// Plug-in exposing one cache entry as a dataset.
#[derive(Clone)]
pub struct CachePlugin {
    inner: Arc<CacheInner>,
}

fn derive_zone_maps(entry: &CacheEntry) -> HashMap<String, Arc<ZoneMap>> {
    entry
        .columns
        .iter()
        .map(|(name, col)| (name.clone(), Arc::new(ZoneMap::from_column(col))))
        .collect()
}

impl CachePlugin {
    /// Wraps a cache entry, deriving fresh zone maps.
    pub fn new(entry: Arc<CacheEntry>) -> CachePlugin {
        let zone_maps = Arc::new(derive_zone_maps(&entry));
        CachePlugin::from_parts(entry, zone_maps)
    }

    /// Wraps a cache entry, reusing the zone maps memoized in the store's
    /// sidecar slot when present (deriving and parking them otherwise).
    /// The sidecar lives and dies with the entry, so invalidation cannot
    /// leave stale zone maps reachable.
    pub fn with_store(entry: Arc<CacheEntry>, store: &CacheStore) -> CachePlugin {
        let memoized = store
            .sidecar(&entry.name)
            .and_then(|sc| sc.downcast::<HashMap<String, Arc<ZoneMap>>>().ok());
        let zone_maps = match memoized {
            Some(maps) => maps,
            None => {
                let maps = Arc::new(derive_zone_maps(&entry));
                store.set_sidecar(&entry.name, maps.clone());
                maps
            }
        };
        CachePlugin::from_parts(entry, zone_maps)
    }

    fn from_parts(
        entry: Arc<CacheEntry>,
        zone_maps: Arc<HashMap<String, Arc<ZoneMap>>>,
    ) -> CachePlugin {
        let schema = Schema::new(
            entry
                .columns
                .iter()
                .map(|(name, col)| Field::new(name.clone(), col.data_type()))
                .collect(),
        );
        let mut stats = DatasetStats::with_cardinality(entry.row_count() as u64);
        for field in schema.fields() {
            if !field.data_type.is_numeric() {
                continue;
            }
            if let Some(zm) = zone_maps.get(&field.name) {
                stats
                    .columns
                    .insert(field.name.clone(), zm.column_stats().clone());
            }
        }
        CachePlugin {
            inner: Arc::new(CacheInner {
                entry,
                schema,
                zone_maps,
                stats,
            }),
        }
    }

    /// The OID (in the *source* dataset) of cached row `idx`, letting partial
    /// matches go back to the original file for the fields that were not
    /// cached.
    pub fn source_oid(&self, idx: u64) -> Option<u64> {
        self.inner.entry.oids.get(idx as usize).copied()
    }

    /// Name of the wrapped cache.
    pub fn cache_name(&self) -> &str {
        &self.inner.entry.name
    }

    fn column(&self, field: &str) -> Result<&ColumnData> {
        self.inner
            .entry
            .column(field)
            .ok_or_else(|| PluginError::UnknownField {
                dataset: self.inner.entry.name.clone(),
                field: field.to_string(),
            })
    }
}

impl InputPlugin for CachePlugin {
    fn dataset(&self) -> &str {
        &self.inner.entry.source_dataset
    }

    fn format(&self) -> SourceFormat {
        // The cache itself is binary regardless of the source format.
        SourceFormat::Binary
    }

    fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    fn len(&self) -> u64 {
        self.inner.entry.row_count() as u64
    }

    fn generate(&self, fields: &[String]) -> Result<ScanAccessors> {
        let mut accessors = Vec::with_capacity(fields.len());
        let mut batch_fields = Vec::with_capacity(fields.len());
        let mut typed_fields = Vec::with_capacity(fields.len());
        for field in fields {
            let column = self.column(field)?.clone();
            let column = Arc::new(column);
            // Morsel path: cached columns copy straight into the batch.
            batch_fields.push((field.clone(), crate::api::column_batch_fill(column.clone())));
            // Vectorized path: cached binary columns never round-trip
            // through Value.
            let (kind, typed) = crate::api::column_typed_fill(column.clone());
            typed_fields.push((field.clone(), kind, typed));
            let accessor = match column.as_ref() {
                ColumnData::Int(_) => {
                    let col = column.clone();
                    FieldAccessor::Int(Arc::new(move |oid| match col.as_ref() {
                        ColumnData::Int(v) => v[oid as usize],
                        _ => unreachable!(),
                    }))
                }
                ColumnData::Float(_) => {
                    let col = column.clone();
                    FieldAccessor::Float(Arc::new(move |oid| match col.as_ref() {
                        ColumnData::Float(v) => v[oid as usize],
                        _ => unreachable!(),
                    }))
                }
                ColumnData::Bool(_) => {
                    let col = column.clone();
                    FieldAccessor::Bool(Arc::new(move |oid| match col.as_ref() {
                        ColumnData::Bool(v) => v[oid as usize],
                        _ => unreachable!(),
                    }))
                }
                ColumnData::Str(_) => {
                    let col = column.clone();
                    FieldAccessor::Str(Arc::new(move |oid| match col.as_ref() {
                        ColumnData::Str(v) => v[oid as usize].clone(),
                        _ => unreachable!(),
                    }))
                }
            };
            accessors.push((field.clone(), accessor));
        }
        Ok(ScanAccessors {
            row_count: self.len(),
            fields: accessors,
            batch_fields,
            typed_fields,
            access_path: format!("cache({})", self.inner.entry.name),
            bad_rows: 0,
        })
    }

    fn read_value(&self, oid: Oid, field: &str) -> Result<Value> {
        self.column(field)?
            .value_at(oid as usize)
            .ok_or(PluginError::OidOutOfRange {
                dataset: self.inner.entry.name.clone(),
                oid,
            })
    }

    fn read_path(&self, oid: Oid, path: &[String]) -> Result<Value> {
        match path {
            [field] => self.read_value(oid, field),
            _ => Err(PluginError::Unsupported(
                "caches hold flattened expression results".into(),
            )),
        }
    }

    fn unnest_init(&self, _oid: Oid, _path: &[String]) -> Result<UnnestCursor> {
        Err(PluginError::Unsupported(
            "caches hold flattened expression results".into(),
        ))
    }

    fn statistics(&self) -> DatasetStats {
        self.inner.stats.clone()
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::cache()
    }

    fn zone_maps(&self, fields: &[String]) -> Vec<(String, Arc<ZoneMap>)> {
        fields
            .iter()
            .filter_map(|f| {
                self.inner
                    .zone_maps
                    .get(f)
                    .map(|zm| (f.clone(), zm.clone()))
            })
            .collect()
    }

    fn cached_zone_maps(&self) -> Vec<(String, Arc<ZoneMap>)> {
        self.inner
            .zone_maps
            .iter()
            .map(|(n, zm)| (n.clone(), zm.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_storage::cache::make_entry;
    use proteus_storage::MemoryManager;

    fn entry() -> Arc<CacheEntry> {
        Arc::new(raw_entry())
    }

    fn raw_entry() -> CacheEntry {
        make_entry(
            "lineitem_orderkey_cache",
            "Scan(lineitem as l)",
            "lineitem",
            SourceFormat::Json,
            vec![
                ("l_orderkey".to_string(), ColumnData::Int(vec![5, 6, 9])),
                (
                    "l_quantity".to_string(),
                    ColumnData::Float(vec![1.0, 2.0, 3.0]),
                ),
            ],
            vec![10, 11, 14],
        )
    }

    #[test]
    fn cache_plugin_exposes_columns_as_fields() {
        let p = CachePlugin::new(entry());
        assert_eq!(p.len(), 3);
        assert_eq!(p.schema().names(), vec!["l_orderkey", "l_quantity"]);
        assert_eq!(p.read_value(1, "l_orderkey").unwrap(), Value::Int(6));
        assert_eq!(p.read_value(2, "l_quantity").unwrap(), Value::Float(3.0));
        assert!(p.read_value(0, "ghost").is_err());
        assert!(p.read_value(9, "l_orderkey").is_err());
    }

    #[test]
    fn source_oids_are_preserved() {
        let p = CachePlugin::new(entry());
        assert_eq!(p.source_oid(0), Some(10));
        assert_eq!(p.source_oid(2), Some(14));
        assert_eq!(p.source_oid(5), None);
        assert_eq!(p.dataset(), "lineitem");
        assert_eq!(p.cache_name(), "lineitem_orderkey_cache");
    }

    #[test]
    fn accessors_read_cached_binary_values() {
        let p = CachePlugin::new(entry());
        let scan = p.generate(&["l_orderkey".to_string()]).unwrap();
        assert_eq!(scan.field("l_orderkey").unwrap().as_i64(2), 9);
        assert!(scan.access_path.contains("cache("));
    }

    #[test]
    fn cache_cost_profile_is_cheapest() {
        let p = CachePlugin::new(entry());
        assert!(p.cost_profile().per_field_access < CostProfile::binary().per_field_access);
    }

    #[test]
    fn nested_access_is_rejected() {
        let p = CachePlugin::new(entry());
        assert!(p.unnest_init(0, &["x".to_string()]).is_err());
        assert!(p.read_path(0, &["a".to_string(), "b".to_string()]).is_err());
    }

    #[test]
    fn with_store_memoizes_zone_maps_in_sidecar() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store.insert(raw_entry()).unwrap();
        let entry = store.get("lineitem_orderkey_cache").unwrap();
        assert!(store.sidecar(&entry.name).is_none());
        let first = CachePlugin::with_store(entry.clone(), &store);
        assert!(store.sidecar(&entry.name).is_some());
        // A second wrap reuses the exact same maps instead of re-deriving.
        let second = CachePlugin::with_store(entry.clone(), &store);
        let zm_a = first.cached_zone_maps();
        let zm_b = second.cached_zone_maps();
        assert_eq!(zm_a.len(), zm_b.len());
        for (name, map) in &zm_a {
            let other = zm_b.iter().find(|(n, _)| n == name).unwrap();
            assert!(Arc::ptr_eq(map, &other.1));
        }
    }

    #[test]
    fn invalidation_drops_memoized_zone_maps() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store.insert(raw_entry()).unwrap();
        let entry = store.get("lineitem_orderkey_cache").unwrap();
        let _ = CachePlugin::with_store(entry.clone(), &store);
        assert!(store.sidecar(&entry.name).is_some());
        store.invalidate_dataset("lineitem");
        // The stale zone maps are gone with the entry — not reachable until
        // some later insert happens to overwrite them.
        assert!(store.sidecar(&entry.name).is_none());
    }
}
