//! The CSV input plug-in.
//!
//! §5.2: "For CSV datasets, structural indexes store the binary positions of
//! a number of data columns in each row. Proteus stores the position of every
//! Nth field of the file (e.g., if N=10, it stores the positions of the 1st,
//! 11th, ... fields). When looking for a field, Proteus locates the closest
//! indexed field position and starts seeking from that point." And: "if a CSV
//! file contains fixed-length entries, Proteus deterministically computes
//! field positions and injects them in the code instead of using a structural
//! index."
//!
//! Both access paths are implemented here; `generate()` picks the
//! deterministic one automatically when the file qualifies.

use std::sync::Arc;

use bytes::Bytes;
use proteus_algebra::{DataType, Schema, Value};
use proteus_storage::{MemoryManager, SourceFormat};

use crate::api::{BadRowPolicy, FieldAccessor, InputPlugin, Oid, ScanAccessors, UnnestCursor};
use crate::error::{PluginError, Result};
use crate::stats::{CostProfile, DatasetStats, StatsCollector};
use crate::zonemap::{derive_zone_maps, ZoneMap};

/// CSV parsing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter.
    pub delimiter: u8,
    /// Whether the first line is a header naming the columns.
    pub has_header: bool,
    /// Store the byte position of every `index_every`-th field of each row
    /// (the paper's "N").
    pub index_every: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: b'|',
            has_header: false,
            index_every: 5,
        }
    }
}

/// The CSV structural index: per-row byte offsets plus the positions of every
/// Nth field within each row.
#[derive(Debug, Clone)]
pub struct CsvStructuralIndex {
    /// Byte offset of the start of each data row.
    row_offsets: Vec<u64>,
    /// Byte length of each data row (excluding the newline).
    row_lengths: Vec<u32>,
    /// For each row, the offsets (relative to the row start) of fields
    /// `0, N, 2N, ...`, flattened row-major.
    anchor_offsets: Vec<u32>,
    /// Number of anchors per row.
    anchors_per_row: usize,
    /// The index stride N.
    index_every: usize,
    /// When every row has byte-identical field positions, the shared offsets
    /// of *all* fields (deterministic fast path); the per-row anchors are
    /// then redundant.
    fixed_layout: Option<Vec<u32>>,
}

impl CsvStructuralIndex {
    /// Builds the index in a single pass over the file.
    pub fn build(data: &[u8], options: &CsvOptions) -> CsvStructuralIndex {
        let mut row_offsets = Vec::new();
        let mut row_lengths = Vec::new();
        let mut anchor_offsets = Vec::new();
        let mut anchors_per_row = 0;
        let mut fixed_layout: Option<Vec<u32>> = None;
        let mut layout_is_fixed = true;

        let mut pos = 0usize;
        let mut first_data_row = true;
        let mut row_index = 0usize;
        while pos < data.len() {
            let line_end = memchr(data, b'\n', pos).unwrap_or(data.len());
            let is_header = options.has_header
                && row_index == 0
                && row_offsets.is_empty()
                && first_data_row_is_header(options);
            row_index += 1;
            if !is_header && line_end > pos {
                let row_start = pos;
                row_offsets.push(row_start as u64);
                row_lengths.push((line_end - pos) as u32);
                // Record field offsets for this row.
                let mut offsets_this_row = Vec::new();
                let mut field_idx = 0usize;
                let mut cursor = pos;
                loop {
                    offsets_this_row.push((cursor - row_start) as u32);
                    field_idx += 1;
                    match memchr_bounded(data, options.delimiter, cursor, line_end) {
                        Some(delim) => cursor = delim + 1,
                        None => break,
                    }
                }
                let _ = field_idx;
                // Anchors: every Nth field offset.
                let anchors: Vec<u32> = offsets_this_row
                    .iter()
                    .step_by(options.index_every.max(1))
                    .copied()
                    .collect();
                if first_data_row {
                    anchors_per_row = anchors.len();
                    fixed_layout = Some(offsets_this_row.clone());
                    first_data_row = false;
                } else if layout_is_fixed
                    && (fixed_layout.as_deref() != Some(&offsets_this_row[..])
                        || row_lengths.first() != row_lengths.last())
                {
                    layout_is_fixed = false;
                    fixed_layout = None;
                }
                anchor_offsets.extend(anchors.iter().take(anchors_per_row));
                // Pad if this row had fewer fields than the first one.
                while anchor_offsets.len() % anchors_per_row.max(1) != 0 {
                    anchor_offsets.push(*anchors.last().unwrap_or(&0));
                }
            }
            pos = line_end + 1;
        }
        if !layout_is_fixed {
            fixed_layout = None;
        }
        CsvStructuralIndex {
            row_offsets,
            row_lengths,
            anchor_offsets,
            anchors_per_row: anchors_per_row.max(1),
            index_every: options.index_every.max(1),
            fixed_layout,
        }
    }

    /// Number of indexed rows.
    pub fn row_count(&self) -> usize {
        self.row_offsets.len()
    }

    /// True when the deterministic fixed-layout fast path applies.
    pub fn is_fixed_layout(&self) -> bool {
        self.fixed_layout.is_some()
    }

    /// Approximate index footprint in bytes (reported against the ~17 % of
    /// file size the paper cites for the Symantec CSV input).
    pub fn size_bytes(&self) -> usize {
        if self.is_fixed_layout() {
            // Deterministic mode drops the per-row anchors.
            self.row_offsets.len() * 8
                + self.fixed_layout.as_ref().map(|v| v.len() * 4).unwrap_or(0)
        } else {
            self.row_offsets.len() * 8 + self.row_lengths.len() * 4 + self.anchor_offsets.len() * 4
        }
    }

    /// Drops the rows flagged in `bad` (same length as `row_count()`) from
    /// the index: the `Skip` bad-row policy. The deterministic fixed layout,
    /// when present, still holds for the surviving rows (they all matched
    /// the first row's layout), so it is kept as-is.
    fn retain_rows(&mut self, bad: &[bool]) {
        let keep = |i: &usize| !bad[*i];
        self.row_offsets = (0..self.row_offsets.len())
            .filter(keep)
            .map(|i| self.row_offsets[i])
            .collect();
        self.row_lengths = (0..self.row_lengths.len())
            .filter(keep)
            .map(|i| self.row_lengths[i])
            .collect();
        let per_row = self.anchors_per_row.max(1);
        self.anchor_offsets = self
            .anchor_offsets
            .chunks(per_row)
            .enumerate()
            .filter(|(i, _)| !bad.get(*i).copied().unwrap_or(false))
            .flat_map(|(_, chunk)| chunk.iter().copied())
            .collect();
    }

    /// Byte range `[start, end)` of field `field_idx` of row `row_idx`.
    pub fn locate_field(
        &self,
        data: &[u8],
        delimiter: u8,
        row_idx: usize,
        field_idx: usize,
    ) -> Option<(usize, usize)> {
        let row_start = *self.row_offsets.get(row_idx)? as usize;
        let row_end = row_start + *self.row_lengths.get(row_idx)? as usize;

        let mut cursor;
        let mut remaining;
        if let Some(layout) = &self.fixed_layout {
            // Deterministic layout: field offset injected directly.
            let offset = *layout.get(field_idx)? as usize;
            cursor = row_start + offset;
            remaining = 0;
        } else {
            // Start from the closest anchored field at or before field_idx.
            let anchor_slot = (field_idx / self.index_every).min(self.anchors_per_row - 1);
            let anchor = self.anchor_offsets[row_idx * self.anchors_per_row + anchor_slot] as usize;
            cursor = row_start + anchor;
            remaining = field_idx - anchor_slot * self.index_every;
        }
        while remaining > 0 {
            cursor = memchr_bounded(data, delimiter, cursor, row_end)? + 1;
            remaining -= 1;
        }
        let end = memchr_bounded(data, delimiter, cursor, row_end).unwrap_or(row_end);
        Some((cursor, end))
    }
}

fn first_data_row_is_header(options: &CsvOptions) -> bool {
    options.has_header
}

fn memchr(haystack: &[u8], needle: u8, from: usize) -> Option<usize> {
    haystack[from..]
        .iter()
        .position(|b| *b == needle)
        .map(|p| p + from)
}

fn memchr_bounded(haystack: &[u8], needle: u8, from: usize, to: usize) -> Option<usize> {
    haystack[from..to]
        .iter()
        .position(|b| *b == needle)
        .map(|p| p + from)
}

struct CsvInner {
    dataset: String,
    data: Bytes,
    schema: Schema,
    options: CsvOptions,
    index: CsvStructuralIndex,
    stats: DatasetStats,
    /// Rows dropped (`Skip`) or nulled (`Null`) at registration.
    bad_rows: u64,
    /// Lazily derived per-morsel zone maps (one extra parse pass per column,
    /// memoized for the plug-in's lifetime).
    zone_maps: std::sync::Mutex<std::collections::HashMap<String, Arc<ZoneMap>>>,
}

/// The CSV input plug-in.
#[derive(Clone)]
pub struct CsvPlugin {
    inner: Arc<CsvInner>,
}

impl CsvPlugin {
    /// Opens a CSV file through the memory manager and builds its structural
    /// index and statistics (the "cold access" work of §5.2).
    pub fn open(
        dataset: impl Into<String>,
        path: impl AsRef<std::path::Path>,
        schema: Schema,
        options: CsvOptions,
        memory: &MemoryManager,
    ) -> Result<CsvPlugin> {
        Self::open_with_policy(dataset, path, schema, options, memory, BadRowPolicy::Null)
    }

    /// [`CsvPlugin::open`] with an explicit bad-row policy.
    pub fn open_with_policy(
        dataset: impl Into<String>,
        path: impl AsRef<std::path::Path>,
        schema: Schema,
        options: CsvOptions,
        memory: &MemoryManager,
        policy: BadRowPolicy,
    ) -> Result<CsvPlugin> {
        let data = memory.map_file(path)?;
        Self::from_bytes_with_policy(dataset, data, schema, options, policy)
    }

    /// Builds a plug-in over an in-memory CSV buffer. Rows that fail to
    /// parse keep their historical lenient semantics (typed misses read as
    /// null, i.e. [`BadRowPolicy::Null`]); use
    /// [`CsvPlugin::from_bytes_with_policy`] to reject or drop them instead.
    pub fn from_bytes(
        dataset: impl Into<String>,
        data: Bytes,
        schema: Schema,
        options: CsvOptions,
    ) -> Result<CsvPlugin> {
        Self::from_bytes_with_policy(dataset, data, schema, options, BadRowPolicy::Null)
    }

    /// [`CsvPlugin::from_bytes`] with an explicit bad-row policy, applied
    /// during the registration-time index/validation pass (§5.2's "cold
    /// access" work — query hot paths never re-validate).
    pub fn from_bytes_with_policy(
        dataset: impl Into<String>,
        data: Bytes,
        schema: Schema,
        options: CsvOptions,
        policy: BadRowPolicy,
    ) -> Result<CsvPlugin> {
        let dataset = dataset.into();
        let mut index = CsvStructuralIndex::build(&data, &options);
        let bad_rows = validate_rows(&dataset, &data, &schema, &options, &mut index, policy)?;
        let stats = collect_stats(&data, &schema, &options, &index);
        Ok(CsvPlugin {
            inner: Arc::new(CsvInner {
                dataset,
                data,
                schema,
                options,
                index,
                stats,
                bad_rows,
                zone_maps: Default::default(),
            }),
        })
    }

    /// Rows skipped or nulled at registration under a lenient
    /// [`BadRowPolicy`].
    pub fn bad_rows(&self) -> u64 {
        self.inner.bad_rows
    }

    /// The structural index (exposed for the index-size experiments).
    pub fn structural_index(&self) -> &CsvStructuralIndex {
        &self.inner.index
    }

    fn field_index(&self, field: &str) -> Result<usize> {
        self.inner
            .schema
            .index_of(field)
            .ok_or_else(|| PluginError::UnknownField {
                dataset: self.inner.dataset.clone(),
                field: field.to_string(),
            })
    }

    fn raw_field(&self, oid: Oid, field_idx: usize) -> Result<&[u8]> {
        let inner = &self.inner;
        let (start, end) = inner
            .index
            .locate_field(
                &inner.data,
                inner.options.delimiter,
                oid as usize,
                field_idx,
            )
            .ok_or(PluginError::OidOutOfRange {
                dataset: inner.dataset.clone(),
                oid,
            })?;
        Ok(&inner.data[start..end])
    }

    fn parse_field(&self, bytes: &[u8], data_type: &DataType) -> Value {
        parse_typed(bytes, data_type)
    }
}

fn parse_typed(bytes: &[u8], data_type: &DataType) -> Value {
    let text = std::str::from_utf8(bytes).unwrap_or("").trim();
    if text.is_empty() {
        return Value::Null;
    }
    match data_type {
        DataType::Int | DataType::Date => {
            text.parse::<i64>().map(Value::Int).unwrap_or(Value::Null)
        }
        DataType::Float => text.parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
        DataType::Bool => match text {
            "true" | "1" | "t" => Value::Bool(true),
            "false" | "0" | "f" => Value::Bool(false),
            _ => Value::Null,
        },
        _ => Value::Str(text.to_string()),
    }
}

/// The registration-time validation pass behind [`BadRowPolicy`]: finds
/// rows whose non-empty typed fields cannot parse (or that are short a
/// field / not valid UTF-8). `Fail` rejects the dataset with the 1-based
/// file line number of the first defect; `Skip` drops the rows from the
/// structural index; `Null` keeps them (typed misses already read as null
/// on the access paths). Returns the number of bad rows seen.
fn validate_rows(
    dataset: &str,
    data: &[u8],
    schema: &Schema,
    options: &CsvOptions,
    index: &mut CsvStructuralIndex,
    policy: BadRowPolicy,
) -> Result<u64> {
    let mut bad = vec![false; index.row_count()];
    let mut bad_count = 0u64;
    for (row, flag) in bad.iter_mut().enumerate() {
        if let Some(defect) = row_defect(data, schema, options, index, row) {
            if policy == BadRowPolicy::Fail {
                let line = row + 1 + usize::from(options.has_header);
                return Err(PluginError::Malformed {
                    dataset: dataset.to_string(),
                    detail: format!("row {line}: {defect}"),
                });
            }
            *flag = true;
            bad_count += 1;
        }
    }
    if policy == BadRowPolicy::Skip && bad_count > 0 {
        index.retain_rows(&bad);
    }
    Ok(bad_count)
}

/// The first defect of a row, if any. Empty fields are *not* defects —
/// they are the format's missing-value convention and read as null under
/// every policy.
fn row_defect(
    data: &[u8],
    schema: &Schema,
    options: &CsvOptions,
    index: &CsvStructuralIndex,
    row: usize,
) -> Option<String> {
    for (idx, field) in schema.fields().iter().enumerate() {
        let Some((start, end)) = index.locate_field(data, options.delimiter, row, idx) else {
            return Some(format!("field `{}` is missing", field.name));
        };
        let Ok(text) = std::str::from_utf8(&data[start..end]) else {
            return Some(format!("field `{}` is not valid UTF-8", field.name));
        };
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        let parses = match field.data_type {
            DataType::Int | DataType::Date => text.parse::<i64>().is_ok(),
            DataType::Float => text.parse::<f64>().is_ok(),
            DataType::Bool => matches!(text, "true" | "1" | "t" | "false" | "0" | "f"),
            _ => true,
        };
        if !parses {
            return Some(format!(
                "field `{}`: cannot parse {:?} as {:?}",
                field.name, text, field.data_type
            ));
        }
    }
    None
}

fn collect_stats(
    data: &[u8],
    schema: &Schema,
    options: &CsvOptions,
    index: &CsvStructuralIndex,
) -> DatasetStats {
    let mut collectors: Vec<StatsCollector> = schema
        .fields()
        .iter()
        .map(|_| StatsCollector::new())
        .collect();
    // Numeric columns only: string min/max are rarely useful and the paper
    // avoids caching/propagating verbose string values.
    for row in 0..index.row_count() {
        for (idx, field) in schema.fields().iter().enumerate() {
            if !field.data_type.is_numeric() {
                continue;
            }
            if let Some((start, end)) = index.locate_field(data, options.delimiter, row, idx) {
                collectors[idx].observe(&parse_typed(&data[start..end], &field.data_type));
            }
        }
    }
    let mut stats = DatasetStats::with_cardinality(index.row_count() as u64);
    for (collector, field) in collectors.into_iter().zip(schema.fields()) {
        if field.data_type.is_numeric() {
            stats.columns.insert(field.name.clone(), collector.finish());
        }
    }
    stats
}

impl InputPlugin for CsvPlugin {
    fn dataset(&self) -> &str {
        &self.inner.dataset
    }

    fn format(&self) -> SourceFormat {
        SourceFormat::Csv
    }

    fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    fn len(&self) -> u64 {
        self.inner.index.row_count() as u64
    }

    fn generate(&self, fields: &[String]) -> Result<ScanAccessors> {
        crate::fault::check("csv.decode").map_err(|detail| PluginError::Malformed {
            dataset: self.inner.dataset.clone(),
            detail,
        })?;
        let mut accessors = Vec::with_capacity(fields.len());
        let mut typed_fields = Vec::with_capacity(fields.len());
        for field in fields {
            let field_idx = self.field_index(field)?;
            let data_type = self
                .inner
                .schema
                .field(field)
                .ok_or_else(|| PluginError::UnknownField {
                    dataset: self.inner.dataset.clone(),
                    field: field.clone(),
                })?
                .data_type
                .clone();
            // Vectorized path for Bool fields: they go through the Generic
            // accessor below (whose misses are Null), so their typed fill
            // shares `parse_typed` directly — nullable bool columns, every
            // miss landing a bit in the column's packed null bitmap
            // (`TypedColumn::push_null` / `null_words`), which the kernel
            // mask loops then fold in word-wise. The scalar
            // Int/Float/String fields get accessor-derived typed fills from
            // `from_accessors`.
            if matches!(data_type, DataType::Bool) {
                let plugin = self.clone();
                let fill: crate::api::TypedFill =
                    Arc::new(move |start, count, out: &mut crate::api::TypedColumn| {
                        out.begin(crate::api::TypedKind::Bool, count);
                        for oid in start..start + count as Oid {
                            let bytes = plugin.raw_field(oid, field_idx).unwrap_or(b"");
                            match parse_typed(bytes, &DataType::Bool) {
                                Value::Bool(b) => out.push_bool(b),
                                _ => out.push_null(),
                            }
                        }
                    });
                typed_fields.push((field.clone(), crate::api::TypedKind::Bool, fill));
            }
            let plugin = self.clone();
            let accessor = match data_type {
                DataType::Int | DataType::Date => FieldAccessor::Int(Arc::new(move |oid| {
                    plugin
                        .raw_field(oid, field_idx)
                        .ok()
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .and_then(|s| s.trim().parse::<i64>().ok())
                        .unwrap_or(0)
                })),
                DataType::Float => FieldAccessor::Float(Arc::new(move |oid| {
                    plugin
                        .raw_field(oid, field_idx)
                        .ok()
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .and_then(|s| s.trim().parse::<f64>().ok())
                        .unwrap_or(0.0)
                })),
                DataType::String => FieldAccessor::Str(Arc::new(move |oid| {
                    plugin
                        .raw_field(oid, field_idx)
                        .ok()
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .map(|s| s.trim().to_string())
                        .unwrap_or_default()
                })),
                other => {
                    let dt = other.clone();
                    FieldAccessor::Generic(Arc::new(move |oid| {
                        plugin
                            .raw_field(oid, field_idx)
                            .map(|b| parse_typed(b, &dt))
                            .unwrap_or(Value::Null)
                    }))
                }
            };
            accessors.push((field.clone(), accessor));
        }
        let access_path = if self.inner.index.is_fixed_layout() {
            "csv(deterministic fixed layout)".to_string()
        } else {
            format!("csv(structural-index N={})", self.inner.options.index_every)
        };
        // The morsel path wraps the typed closures: parsing still happens
        // per value, but accessor dispatch drops to one call per morsel.
        // `from_accessors` derives the Int/Float/String typed fills; the
        // hand-built nullable Bool fills are appended on top.
        let mut scan = ScanAccessors::from_accessors(self.len(), accessors, access_path)
            .with_bad_rows(self.inner.bad_rows);
        scan.typed_fields.extend(typed_fields);
        Ok(crate::fault::instrument_scan(scan, "csv.decode"))
    }

    fn read_value(&self, oid: Oid, field: &str) -> Result<Value> {
        let idx = self.field_index(field)?;
        let data_type = self
            .inner
            .schema
            .field_at(idx)
            .ok_or_else(|| PluginError::UnknownField {
                dataset: self.inner.dataset.clone(),
                field: field.to_string(),
            })?
            .data_type
            .clone();
        let bytes = self.raw_field(oid, idx)?;
        Ok(self.parse_field(bytes, &data_type))
    }

    fn read_path(&self, oid: Oid, path: &[String]) -> Result<Value> {
        // CSV is flat: only single-segment paths are meaningful.
        match path {
            [field] => self.read_value(oid, field),
            _ => Err(PluginError::Unsupported(format!(
                "CSV data has no nested path {:?}",
                path.join(".")
            ))),
        }
    }

    fn unnest_init(&self, _oid: Oid, path: &[String]) -> Result<UnnestCursor> {
        Err(PluginError::Unsupported(format!(
            "CSV data has no nested collections (requested {})",
            path.join(".")
        )))
    }

    fn statistics(&self) -> DatasetStats {
        self.inner.stats.clone()
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::csv()
    }

    fn zone_maps(&self, fields: &[String]) -> Vec<(String, Arc<ZoneMap>)> {
        derive_zone_maps(&self.inner.zone_maps, fields, |missing| {
            self.generate(missing).ok()
        })
    }

    fn cached_zone_maps(&self) -> Vec<(String, Arc<ZoneMap>)> {
        self.inner
            .zone_maps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(n, zm)| (n.clone(), zm.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lineitem_schema() -> Schema {
        Schema::from_pairs(vec![
            ("l_orderkey", DataType::Int),
            ("l_linenumber", DataType::Int),
            ("l_quantity", DataType::Float),
            ("l_comment", DataType::String),
        ])
    }

    fn sample_csv() -> String {
        let mut s = String::new();
        for i in 0..50 {
            s.push_str(&format!(
                "{}|{}|{}|comment {}\n",
                i,
                i % 7,
                i as f64 * 1.5,
                i
            ));
        }
        s
    }

    fn plugin() -> CsvPlugin {
        CsvPlugin::from_bytes(
            "lineitem",
            Bytes::from(sample_csv()),
            lineitem_schema(),
            CsvOptions {
                delimiter: b'|',
                has_header: false,
                index_every: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn row_count_and_schema() {
        let p = plugin();
        assert_eq!(p.len(), 50);
        assert_eq!(p.schema().len(), 4);
        assert_eq!(p.format(), SourceFormat::Csv);
    }

    #[test]
    fn read_value_parses_types() {
        let p = plugin();
        assert_eq!(p.read_value(3, "l_orderkey").unwrap(), Value::Int(3));
        assert_eq!(p.read_value(3, "l_quantity").unwrap(), Value::Float(4.5));
        assert_eq!(
            p.read_value(3, "l_comment").unwrap(),
            Value::Str("comment 3".into())
        );
    }

    #[test]
    fn unknown_field_and_oid_errors() {
        let p = plugin();
        assert!(matches!(
            p.read_value(0, "ghost"),
            Err(PluginError::UnknownField { .. })
        ));
        assert!(matches!(
            p.read_value(9999, "l_orderkey"),
            Err(PluginError::OidOutOfRange { .. })
        ));
    }

    #[test]
    fn generated_accessors_match_read_value() {
        let p = plugin();
        let scan = p
            .generate(&["l_orderkey".to_string(), "l_quantity".to_string()])
            .unwrap();
        assert_eq!(scan.row_count, 50);
        let key = scan.field("l_orderkey").unwrap();
        let qty = scan.field("l_quantity").unwrap();
        for oid in 0..50u64 {
            assert_eq!(
                Value::Int(key.as_i64(oid)),
                p.read_value(oid, "l_orderkey").unwrap()
            );
            assert_eq!(
                Value::Float(qty.as_f64(oid)),
                p.read_value(oid, "l_quantity").unwrap()
            );
        }
    }

    #[test]
    fn header_rows_are_skipped() {
        let csv = "a|b\n1|2\n3|4\n";
        let p = CsvPlugin::from_bytes(
            "t",
            Bytes::from(csv),
            Schema::from_pairs(vec![("a", DataType::Int), ("b", DataType::Int)]),
            CsvOptions {
                delimiter: b'|',
                has_header: true,
                index_every: 1,
            },
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.read_value(0, "a").unwrap(), Value::Int(1));
    }

    #[test]
    fn statistics_cover_numeric_columns() {
        let p = plugin();
        let stats = p.statistics();
        assert_eq!(stats.cardinality, 50);
        let key = stats.column("l_orderkey").unwrap();
        assert_eq!(key.min, Value::Int(0));
        assert_eq!(key.max, Value::Int(49));
        assert!(stats.column("l_comment").is_none());
    }

    #[test]
    fn fixed_layout_detected_only_when_uniform() {
        // All rows identical widths → deterministic layout.
        let uniform = "11|22|33\n44|55|66\n77|88|99\n";
        let p = CsvPlugin::from_bytes(
            "u",
            Bytes::from(uniform),
            Schema::from_pairs(vec![
                ("a", DataType::Int),
                ("b", DataType::Int),
                ("c", DataType::Int),
            ]),
            CsvOptions {
                delimiter: b'|',
                has_header: false,
                index_every: 2,
            },
        )
        .unwrap();
        assert!(p.structural_index().is_fixed_layout());
        assert!(p
            .generate(&["a".into()])
            .unwrap()
            .access_path
            .contains("deterministic"));

        // Variable-length rows → structural index path.
        let p = plugin();
        assert!(!p.structural_index().is_fixed_layout());
        assert!(p
            .generate(&["l_orderkey".into()])
            .unwrap()
            .access_path
            .contains("structural-index"));
    }

    #[test]
    fn missing_values_become_null() {
        let csv = "1||x\n";
        let p = CsvPlugin::from_bytes(
            "t",
            Bytes::from(csv),
            Schema::from_pairs(vec![
                ("a", DataType::Int),
                ("b", DataType::Int),
                ("c", DataType::String),
            ]),
            CsvOptions {
                delimiter: b'|',
                has_header: false,
                index_every: 1,
            },
        )
        .unwrap();
        assert_eq!(p.read_value(0, "b").unwrap(), Value::Null);
        assert_eq!(p.read_value(0, "c").unwrap(), Value::Str("x".into()));
    }

    #[test]
    fn unnest_is_unsupported_for_flat_csv() {
        let p = plugin();
        assert!(p.unnest_init(0, &["l_comment".to_string()]).is_err());
        assert!(p.read_path(0, &["a".to_string(), "b".to_string()]).is_err());
    }

    #[test]
    fn index_size_is_reported() {
        let p = plugin();
        assert!(p.structural_index().size_bytes() > 0);
    }

    #[test]
    fn hash_and_flush_defaults_work() {
        let p = plugin();
        let h1 = p.hash_value(1, "l_orderkey").unwrap();
        let h2 = p.hash_value(1, "l_orderkey").unwrap();
        assert_eq!(h1, h2);
        let mut out = String::new();
        p.flush_value(1, "l_orderkey", &mut out).unwrap();
        assert_eq!(out, "1");
    }
}
