//! Error type for the plug-in layer.

use std::fmt;

use proteus_algebra::AlgebraError;
use proteus_storage::StorageError;

/// Errors produced by input plug-ins.
#[derive(Debug)]
pub enum PluginError {
    /// Error bubbled up from the storage layer.
    Storage(StorageError),
    /// Error bubbled up from expression evaluation.
    Algebra(AlgebraError),
    /// Malformed input data (CSV/JSON syntax, bad numbers, ...).
    Malformed {
        /// Dataset being read.
        dataset: String,
        /// What went wrong.
        detail: String,
    },
    /// A requested field does not exist in the dataset.
    UnknownField {
        /// Dataset being read.
        dataset: String,
        /// Field that was requested.
        field: String,
    },
    /// An OID outside the dataset was requested.
    OidOutOfRange {
        /// Dataset being read.
        dataset: String,
        /// Offending OID.
        oid: u64,
    },
    /// Generic unsupported operation for this plug-in/format.
    Unsupported(String),
}

impl fmt::Display for PluginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PluginError::Storage(e) => write!(f, "storage error: {e}"),
            PluginError::Algebra(e) => write!(f, "algebra error: {e}"),
            PluginError::Malformed { dataset, detail } => {
                write!(f, "malformed data in {dataset}: {detail}")
            }
            PluginError::UnknownField { dataset, field } => {
                write!(f, "dataset {dataset} has no field {field}")
            }
            PluginError::OidOutOfRange { dataset, oid } => {
                write!(f, "oid {oid} out of range for {dataset}")
            }
            PluginError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for PluginError {}

impl From<StorageError> for PluginError {
    fn from(e: StorageError) -> Self {
        PluginError::Storage(e)
    }
}

impl From<AlgebraError> for PluginError {
    fn from(e: AlgebraError) -> Self {
        PluginError::Algebra(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PluginError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = PluginError::UnknownField {
            dataset: "lineitem".into(),
            field: "ghost".into(),
        };
        assert!(e.to_string().contains("lineitem"));
        assert!(e.to_string().contains("ghost"));
        let e = PluginError::OidOutOfRange {
            dataset: "orders".into(),
            oid: 42,
        };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let e: PluginError = StorageError::NotFound("x".into()).into();
        assert!(matches!(e, PluginError::Storage(_)));
        let e: PluginError = AlgebraError::Parse("y".into()).into();
        assert!(matches!(e, PluginError::Algebra(_)));
    }
}
