//! Failpoint-style fault injection for chaos testing.
//!
//! The execution stack calls [`fire`] at a handful of named *sites*
//! (plug-in decode, morsel dispatch, partial merge, cache build, and the
//! concurrency tier: `scheduler.admit`, `scheduler.steal`, `service.read`,
//! `service.write`). In
//! production the whole module is a single relaxed atomic load per site —
//! no lock, no allocation. Tests (or an operator, via the `PROTEUS_FAULTS`
//! environment variable) arm a site with a [`FaultAction`]; the next time
//! execution passes through it the action fires: return an injected error,
//! panic (to exercise panic containment), or sleep (to make deadline and
//! cancellation tests deterministic).
//!
//! Configuration is process-global, so test suites that arm faults must
//! serialize themselves (see `tests/fault_injection.rs`).
//!
//! Syntax of `PROTEUS_FAULTS`: `site=action[@skip][;site=action...]` where
//! `action` is `error`, `panic`, or `sleep:<millis>`, and the optional
//! `@skip` makes the site pass through that many hits before firing (e.g.
//! `dispatch.morsel=panic@3` panics on the fourth morsel).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock, PoisonError};

/// What an armed fault site does when execution reaches it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Surface an injected error (`Err` with the site name).
    Error,
    /// Panic with the site name as payload (exercises `catch_unwind`).
    Panic,
    /// Sleep for the given number of milliseconds, then continue. Used to
    /// hold a query inside a specific stage so deadlines/cancellation can
    /// trip there deterministically.
    SleepMs(u64),
}

#[derive(Clone, Copy, Debug)]
struct FaultSpec {
    action: FaultAction,
    /// Number of hits to pass through before firing.
    skip: u64,
    /// Hits observed at this site since it was armed.
    seen: u64,
    /// Times the action actually fired.
    fired: u64,
}

/// Fast path: false means no site is armed anywhere in the process.
static ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn registry() -> &'static Mutex<HashMap<String, FaultSpec>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FaultSpec>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn with_registry<T>(f: impl FnOnce(&mut HashMap<String, FaultSpec>) -> T) -> T {
    let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    f(&mut guard)
}

fn init_from_env() {
    let Ok(spec) = std::env::var("PROTEUS_FAULTS") else {
        return;
    };
    for entry in spec.split(';').filter(|s| !s.trim().is_empty()) {
        let Some((site, action)) = entry.split_once('=') else {
            continue;
        };
        let (action, skip) = match action.split_once('@') {
            Some((a, n)) => (a, n.trim().parse::<u64>().unwrap_or(0)),
            None => (action, 0),
        };
        let action = match action.trim() {
            "error" => FaultAction::Error,
            "panic" => FaultAction::Panic,
            other => match other.strip_prefix("sleep:") {
                Some(ms) => FaultAction::SleepMs(ms.trim().parse::<u64>().unwrap_or(1)),
                None => continue,
            },
        };
        configure_after(site.trim(), action, skip);
    }
}

/// Arms `site` with `action`, firing on every hit.
pub fn configure(site: &str, action: FaultAction) {
    configure_after(site, action, 0);
}

/// Arms `site` with `action`, passing through the first `skip` hits.
pub fn configure_after(site: &str, action: FaultAction, skip: u64) {
    with_registry(|reg| {
        reg.insert(
            site.to_string(),
            FaultSpec {
                action,
                skip,
                seen: 0,
                fired: 0,
            },
        );
    });
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms every site (hit counters are discarded).
pub fn clear() {
    with_registry(HashMap::clear);
    ARMED.store(false, Ordering::SeqCst);
}

/// Times the action at `site` has fired since it was armed.
pub fn fired(site: &str) -> u64 {
    with_registry(|reg| reg.get(site).map_or(0, |s| s.fired))
}

/// The fault hook: call at a named site; returns the action to apply, if
/// the site is armed and due. Disarmed cost is one relaxed atomic load.
#[inline]
pub fn fire(site: &str) -> Option<FaultAction> {
    ENV_INIT.call_once(init_from_env);
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    with_registry(|reg| {
        let spec = reg.get_mut(site)?;
        spec.seen += 1;
        if spec.seen <= spec.skip {
            return None;
        }
        spec.fired += 1;
        Some(spec.action)
    })
}

/// True when any site is armed (or `PROTEUS_FAULTS` is set). Plug-ins use
/// this to decide whether to wrap their morsel fills with fault checks, so
/// the disarmed hot path keeps zero extra indirection.
pub fn armed() -> bool {
    ENV_INIT.call_once(init_from_env);
    ARMED.load(Ordering::Relaxed)
}

/// Convenience wrapper used by the fault sites themselves: applies the
/// armed action. `SleepMs` sleeps and continues, `Panic` panics (the
/// executor's `catch_unwind` turns it into a structured error), `Error`
/// returns `Err` with a human-readable description for the caller to wrap
/// in its own error type.
#[inline]
pub fn check(site: &str) -> std::result::Result<(), String> {
    match fire(site) {
        None => Ok(()),
        Some(FaultAction::SleepMs(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(FaultAction::Panic) => panic!("injected panic at fault site `{site}`"),
        Some(FaultAction::Error) => Err(format!("injected error at fault site `{site}`")),
    }
}

/// Panic-payload prefix for `Error` actions fired at infallible sites
/// (morsel fill closures have no error channel): the executor's
/// `catch_unwind` recognizes the prefix and reports a structured injected
/// error instead of a worker panic.
pub const INJECTED_ERROR_SENTINEL: &str = "__proteus_injected_fault_error__: ";

/// Fault check for infallible hot-path sites: `Error` becomes a sentinel
/// panic (see [`INJECTED_ERROR_SENTINEL`]), everything else behaves like
/// [`check`].
#[inline]
pub fn check_infallible(site: &str) {
    if let Err(detail) = check(site) {
        panic!("{INJECTED_ERROR_SENTINEL}{detail}");
    }
}

/// Wraps a scan's morsel fill closures with fault checks at `site` — only
/// when some fault is armed, so production scans are untouched. Called by
/// each plug-in at the end of `generate()`.
pub fn instrument_scan(
    mut scan: crate::api::ScanAccessors,
    site: &'static str,
) -> crate::api::ScanAccessors {
    if !armed() {
        return scan;
    }
    for (_, fill) in scan.batch_fields.iter_mut() {
        let inner = fill.clone();
        *fill = std::sync::Arc::new(
            move |start, count, out: &mut [proteus_algebra::Value], base, stride| {
                check_infallible(site);
                inner(start, count, out, base, stride);
            },
        ) as crate::api::BatchFill;
    }
    for (_, _, fill) in scan.typed_fields.iter_mut() {
        let inner = fill.clone();
        *fill = std::sync::Arc::new(move |start, count, out: &mut crate::api::TypedColumn| {
            check_infallible(site);
            inner(start, count, out);
        });
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fault state is process-global; these tests all use distinct sites so
    // they can run concurrently with each other (the chaos suite in
    // `tests/fault_injection.rs` serializes itself separately).

    #[test]
    fn disarmed_site_is_silent() {
        assert_eq!(fire("unit.nothing"), None);
        assert!(check("unit.nothing").is_ok());
    }

    #[test]
    fn error_action_fires_and_counts() {
        configure("unit.error", FaultAction::Error);
        let err = check("unit.error").unwrap_err();
        assert!(err.contains("unit.error"));
        assert_eq!(fired("unit.error"), 1);
        with_registry(|reg| {
            reg.remove("unit.error");
        });
    }

    #[test]
    fn skip_counts_pass_through_hits() {
        configure_after("unit.skip", FaultAction::Error, 2);
        assert!(check("unit.skip").is_ok());
        assert!(check("unit.skip").is_ok());
        assert!(check("unit.skip").is_err());
        assert_eq!(fired("unit.skip"), 1);
        with_registry(|reg| {
            reg.remove("unit.skip");
        });
    }

    #[test]
    fn sleep_action_continues() {
        configure("unit.sleep", FaultAction::SleepMs(1));
        assert!(check("unit.sleep").is_ok());
        assert_eq!(fired("unit.sleep"), 1);
        with_registry(|reg| {
            reg.remove("unit.sleep");
        });
    }

    #[test]
    #[should_panic(expected = "injected panic at fault site")]
    fn panic_action_panics() {
        configure("unit.panic", FaultAction::Panic);
        let _ = check("unit.panic");
    }
}
