//! The JSON input plug-in and its two-level structural index (Figure 4).
//!
//! When Proteus accesses a JSON file for the first time it validates the
//! input and, as a side-effect, builds a *structural index* per JSON object:
//!
//! * **Level 1** stores, for every token of the object (field values,
//!   nested objects, arrays), its binary start/end positions in the file and
//!   its type.
//! * **Level 0** is an associative array mapping field names — including
//!   nested-record paths such as `c.d.d1` — to their Level-1 entries, so a
//!   field lookup is a hash probe instead of a scan over the object's tokens.
//!   Array *contents* are deliberately not registered: the explicit `unnest`
//!   operator handles them uniformly.
//!
//! When every object turns out to have the same fields in the same order
//! (machine-generated data), the plug-in drops Level 0 entirely and keeps a
//! single shared field-order table — the "specializing per dataset contents"
//! optimization of §5.2.
//!
//! The file may be newline-delimited objects (NDJSON) or a single top-level
//! array of objects; both forms appear in the paper's workloads.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use proteus_algebra::{DataType, Field, Record, Schema, Value};
use proteus_storage::{MemoryManager, SourceFormat};

use crate::api::{BadRowPolicy, FieldAccessor, InputPlugin, Oid, ScanAccessors, UnnestCursor};
use crate::error::{PluginError, Result};
use crate::stats::{CostProfile, DatasetStats, StatsCollector};
use crate::zonemap::{derive_zone_maps, ZoneMap};

/// Type of an indexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenType {
    /// A nested JSON object.
    Object,
    /// A JSON array.
    Array,
    /// A string value.
    String,
    /// A numeric value.
    Number,
    /// A boolean value.
    Bool,
    /// A null.
    Null,
}

/// One Level-1 entry: the position and type of a token inside the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEntry {
    /// Absolute byte offset of the token start.
    pub start: u64,
    /// Absolute byte offset one past the token end.
    pub end: u64,
    /// Token type.
    pub token_type: TokenType,
}

/// The per-object structural index.
#[derive(Debug, Clone, Default)]
pub struct ObjectIndex {
    /// Absolute span of the whole object.
    pub start: u64,
    /// End of the object (exclusive).
    pub end: u64,
    /// Level 1: token entries in field-discovery order.
    pub entries: Vec<TokenEntry>,
    /// Level 0: dotted field path → Level-1 entry position. Empty when the
    /// dataset-wide deterministic layout is in effect.
    pub level0: Vec<(String, u32)>,
}

/// The dataset-wide structural index.
#[derive(Debug, Clone)]
pub struct JsonStructuralIndex {
    /// Per-object indexes (the OID is the position in this vector).
    pub objects: Vec<ObjectIndex>,
    /// Shared path → slot table used when the layout is deterministic.
    pub shared_layout: Option<HashMap<String, u32>>,
    /// Paths in discovery order of the first object (used for schema
    /// inference and to validate determinism).
    pub first_object_paths: Vec<String>,
}

impl JsonStructuralIndex {
    /// True when Level 0 was dropped in favour of a shared layout.
    pub fn is_deterministic(&self) -> bool {
        self.shared_layout.is_some()
    }

    /// Number of indexed objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Approximate index footprint in bytes. Level-1 entries cost 17 bytes
    /// (two u64 positions + type tag); Level-0 entries cost their path string
    /// plus a 4-byte slot; the deterministic variant pays the path strings
    /// only once.
    pub fn size_bytes(&self) -> usize {
        let level1: usize = self.objects.iter().map(|o| 16 + o.entries.len() * 17).sum();
        let level0: usize = self
            .objects
            .iter()
            .map(|o| o.level0.iter().map(|(p, _)| p.len() + 4).sum::<usize>())
            .sum();
        let shared: usize = self
            .shared_layout
            .as_ref()
            .map(|m| m.keys().map(|p| p.len() + 4).sum())
            .unwrap_or(0);
        level1 + level0 + shared
    }

    /// Finds the Level-1 entry for a dotted path within an object.
    pub fn lookup(&self, oid: usize, path: &str) -> Option<TokenEntry> {
        let object = self.objects.get(oid)?;
        let slot = match &self.shared_layout {
            Some(shared) => *shared.get(path)?,
            None => object
                .level0
                .iter()
                .find(|(p, _)| p == path)
                .map(|(_, slot)| *slot)?,
        };
        object.entries.get(slot as usize).copied()
    }
}

// ---------------------------------------------------------------------------
// Position-tracking JSON parsing.
// ---------------------------------------------------------------------------

struct JsonParser<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(data: &'a [u8], pos: usize) -> Self {
        JsonParser { data, pos }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.data.len() && self.data[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }

    fn error(&self, msg: &str) -> PluginError {
        PluginError::Malformed {
            dataset: "<json>".into(),
            detail: format!("{msg} at byte {}", self.pos),
        }
    }

    /// Skips one JSON value, returning its span and type without building a
    /// [`Value`]. Used by the index builder and by lazy access.
    fn skip_value(&mut self) -> Result<TokenEntry> {
        self.skip_ws();
        let start = self.pos as u64;
        let token_type = match self.peek() {
            Some(b'{') => {
                self.skip_object()?;
                TokenType::Object
            }
            Some(b'[') => {
                self.skip_array()?;
                TokenType::Array
            }
            Some(b'"') => {
                self.skip_string()?;
                TokenType::String
            }
            Some(b't') | Some(b'f') => {
                self.skip_literal()?;
                TokenType::Bool
            }
            Some(b'n') => {
                self.skip_literal()?;
                TokenType::Null
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                self.skip_number();
                TokenType::Number
            }
            _ => return Err(self.error("unexpected character")),
        };
        Ok(TokenEntry {
            start,
            end: self.pos as u64,
            token_type,
        })
    }

    fn skip_object(&mut self) -> Result<()> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.skip_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn skip_array(&mut self) -> Result<()> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn skip_string(&mut self) -> Result<()> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'\\' => {
                    self.pos += 1;
                }
                b'"' => return Ok(()),
                _ => {}
            }
        }
        Err(self.error("unterminated string"))
    }

    fn skip_number(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn skip_literal(&mut self) -> Result<()> {
        for lit in ["true", "false", "null"] {
            if self.data[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                return Ok(());
            }
        }
        Err(self.error("invalid literal"))
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", c as char)))
        }
    }

    /// Parses the string starting at the current position (returning its
    /// unescaped contents).
    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            // Keep \uXXXX escapes verbatim (sufficient for the
                            // synthetic workloads; avoids full UTF-16 handling).
                            out.push_str("\\u");
                        }
                        other => out.push(other as char),
                    }
                }
                other => out.push(other as char),
            }
        }
        Err(self.error("unterminated string"))
    }

    /// Fully parses one JSON value into a [`Value`].
    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut rec = Record::empty();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Record(rec));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    rec.set(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Record(rec));
                        }
                        _ => return Err(self.error("expected ',' or '}'")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::List(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::List(items));
                        }
                        _ => return Err(self.error("expected ',' or ']'")),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => {
                self.skip_literal()?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.skip_literal()?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.skip_literal()?;
                Ok(Value::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                self.skip_number();
                let text = std::str::from_utf8(&self.data[start..self.pos])
                    .map_err(|_| self.error("invalid number bytes"))?;
                if text.contains('.') || text.contains('e') || text.contains('E') {
                    text.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| self.error("invalid float"))
                } else {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| self.error("invalid integer"))
                }
            }
            _ => Err(self.error("unexpected character")),
        }
    }
}

/// Parses a standalone JSON value from a byte slice (exposed for tests and
/// for the document-store baseline which ingests JSON).
pub fn parse_json_value(data: &[u8]) -> Result<Value> {
    let mut parser = JsonParser::new(data, 0);
    let value = parser.parse_value()?;
    parser.skip_ws();
    Ok(value)
}

// ---------------------------------------------------------------------------
// Index construction.
// ---------------------------------------------------------------------------

/// Builds the structural index of one object starting at `start`.
/// Returns the object index and the position one past the object.
fn index_object(data: &[u8], start: usize) -> Result<(ObjectIndex, usize)> {
    let mut parser = JsonParser::new(data, start);
    parser.skip_ws();
    let object_start = parser.pos as u64;
    if parser.peek() != Some(b'{') {
        return Err(parser.error("expected object"));
    }

    let mut entries = Vec::new();
    let mut level0 = Vec::new();
    index_object_fields(data, &mut parser, "", &mut entries, &mut level0)?;

    Ok((
        ObjectIndex {
            start: object_start,
            end: parser.pos as u64,
            entries,
            level0,
        },
        parser.pos,
    ))
}

/// Indexes the fields of the object whose '{' is at the parser position,
/// prefixing registered paths with `prefix`.
fn index_object_fields(
    data: &[u8],
    parser: &mut JsonParser<'_>,
    prefix: &str,
    entries: &mut Vec<TokenEntry>,
    level0: &mut Vec<(String, u32)>,
) -> Result<()> {
    parser.expect(b'{')?;
    parser.skip_ws();
    if parser.peek() == Some(b'}') {
        parser.pos += 1;
        return Ok(());
    }
    loop {
        parser.skip_ws();
        let key = parser.parse_string()?;
        parser.skip_ws();
        parser.expect(b':')?;
        parser.skip_ws();
        let path = if prefix.is_empty() {
            key
        } else {
            format!("{prefix}.{key}")
        };
        if parser.peek() == Some(b'{') {
            // Nested record: register the object span itself and recurse so
            // nested leaves (c.d.d1) are directly addressable from Level 0.
            let start = parser.pos as u64;
            let before_entries = entries.len();
            index_object_fields(data, parser, &path, entries, level0)?;
            let entry = TokenEntry {
                start,
                end: parser.pos as u64,
                token_type: TokenType::Object,
            };
            entries.push(entry);
            level0.push((path, (entries.len() - 1) as u32));
            let _ = before_entries;
        } else {
            let entry = {
                let mut sub = JsonParser::new(data, parser.pos);
                let e = sub.skip_value()?;
                parser.pos = sub.pos;
                e
            };
            entries.push(entry);
            level0.push((path, (entries.len() - 1) as u32));
        }
        parser.skip_ws();
        match parser.peek() {
            Some(b',') => parser.pos += 1,
            Some(b'}') => {
                parser.pos += 1;
                return Ok(());
            }
            _ => return Err(parser.error("expected ',' or '}'")),
        }
    }
}

/// Builds the dataset-wide structural index, detecting NDJSON vs top-level
/// array and the deterministic-layout optimization. Malformed objects are
/// rejected ([`BadRowPolicy::Fail`]).
pub fn build_index(data: &[u8]) -> Result<JsonStructuralIndex> {
    build_index_with_policy(data, BadRowPolicy::Fail).map(|(index, _)| index)
}

/// [`build_index`] with an explicit bad-row policy. Under `Skip`/`Null`
/// a malformed object is abandoned and indexing resumes after the next
/// newline (NDJSON's natural record boundary — in array form this may
/// also drop trailing objects that share the damaged line): `Skip` drops
/// the object entirely, `Null` keeps an empty per-object index so every
/// field of that OID reads as null. Returns the index and the number of
/// bad objects.
pub fn build_index_with_policy(
    data: &[u8],
    policy: BadRowPolicy,
) -> Result<(JsonStructuralIndex, u64)> {
    let mut objects = Vec::new();
    let mut bad_rows = 0u64;
    let mut pos = 0usize;
    // Skip leading whitespace to detect the container form.
    while pos < data.len() && data[pos].is_ascii_whitespace() {
        pos += 1;
    }
    let array_form = data.get(pos) == Some(&b'[');
    if array_form {
        pos += 1;
    }
    loop {
        while pos < data.len() && (data[pos].is_ascii_whitespace() || data[pos] == b',') {
            pos += 1;
        }
        if pos >= data.len() || data[pos] == b']' {
            break;
        }
        match index_object(data, pos) {
            Ok((object, next)) => {
                objects.push(object);
                pos = next;
            }
            Err(e) => match policy {
                BadRowPolicy::Fail => {
                    let ordinal = objects.len() + 1;
                    return Err(match e {
                        PluginError::Malformed { dataset, detail } => PluginError::Malformed {
                            dataset,
                            detail: format!("object {ordinal}: {detail}"),
                        },
                        other => other,
                    });
                }
                BadRowPolicy::Skip | BadRowPolicy::Null => {
                    bad_rows += 1;
                    let resume = data[pos..]
                        .iter()
                        .position(|b| *b == b'\n')
                        .map(|p| pos + p + 1)
                        .unwrap_or(data.len());
                    if policy == BadRowPolicy::Null {
                        objects.push(ObjectIndex {
                            start: pos as u64,
                            end: resume as u64,
                            ..ObjectIndex::default()
                        });
                    }
                    pos = resume;
                }
            },
        }
    }

    // Determinism check: identical path sequences across all objects.
    let first_object_paths: Vec<String> = objects
        .first()
        .map(|o| o.level0.iter().map(|(p, _)| p.clone()).collect())
        .unwrap_or_default();
    let deterministic = !objects.is_empty()
        && objects.iter().all(|o| {
            o.level0.len() == first_object_paths.len()
                && o.level0
                    .iter()
                    .zip(&first_object_paths)
                    .all(|((p, _), expected)| p == expected)
        });

    let shared_layout = if deterministic {
        let map: HashMap<String, u32> = objects[0]
            .level0
            .iter()
            .map(|(p, slot)| (p.clone(), *slot))
            .collect();
        // Drop per-object Level 0 — it is now redundant.
        for object in &mut objects {
            object.level0.clear();
        }
        Some(map)
    } else {
        None
    };

    Ok((
        JsonStructuralIndex {
            objects,
            shared_layout,
            first_object_paths,
        },
        bad_rows,
    ))
}

// ---------------------------------------------------------------------------
// The plug-in.
// ---------------------------------------------------------------------------

struct JsonInner {
    dataset: String,
    data: Bytes,
    schema: Schema,
    index: JsonStructuralIndex,
    stats: DatasetStats,
    /// Objects dropped (`Skip`) or nulled (`Null`) at registration.
    bad_rows: u64,
    /// Lazily derived per-morsel zone maps (one extra parse pass per column,
    /// memoized for the plug-in's lifetime).
    zone_maps: std::sync::Mutex<HashMap<String, Arc<ZoneMap>>>,
}

/// The JSON input plug-in.
#[derive(Clone)]
pub struct JsonPlugin {
    inner: Arc<JsonInner>,
}

impl JsonPlugin {
    /// Opens a JSON file through the memory manager; validating the file and
    /// building the structural index happen here (the "first/cold access").
    pub fn open(
        dataset: impl Into<String>,
        path: impl AsRef<std::path::Path>,
        memory: &MemoryManager,
    ) -> Result<JsonPlugin> {
        Self::open_with_policy(dataset, path, memory, BadRowPolicy::Fail)
    }

    /// [`JsonPlugin::open`] with an explicit bad-row policy.
    pub fn open_with_policy(
        dataset: impl Into<String>,
        path: impl AsRef<std::path::Path>,
        memory: &MemoryManager,
        policy: BadRowPolicy,
    ) -> Result<JsonPlugin> {
        let data = memory.map_file(path)?;
        Self::from_bytes_with_policy(dataset, data, policy)
    }

    /// Builds a plug-in over an in-memory JSON buffer. Malformed objects
    /// reject the dataset (the historical behavior, [`BadRowPolicy::Fail`]);
    /// use [`JsonPlugin::from_bytes_with_policy`] to skip or null them.
    pub fn from_bytes(dataset: impl Into<String>, data: Bytes) -> Result<JsonPlugin> {
        Self::from_bytes_with_policy(dataset, data, BadRowPolicy::Fail)
    }

    /// [`JsonPlugin::from_bytes`] with an explicit bad-row policy, applied
    /// while the structural index is built (the "first/cold access" —
    /// query hot paths never re-validate).
    pub fn from_bytes_with_policy(
        dataset: impl Into<String>,
        data: Bytes,
        policy: BadRowPolicy,
    ) -> Result<JsonPlugin> {
        let dataset = dataset.into();
        let (index, bad_rows) = build_index_with_policy(&data, policy).map_err(|e| match e {
            PluginError::Malformed { detail, .. } => PluginError::Malformed {
                dataset: dataset.clone(),
                detail,
            },
            other => other,
        })?;
        let schema = infer_schema(&data, &index);
        let stats = collect_stats(&data, &index, &schema);
        Ok(JsonPlugin {
            inner: Arc::new(JsonInner {
                dataset,
                data,
                schema,
                index,
                stats,
                bad_rows,
                zone_maps: Default::default(),
            }),
        })
    }

    /// Objects skipped or nulled at registration under a lenient
    /// [`BadRowPolicy`].
    pub fn bad_rows(&self) -> u64 {
        self.inner.bad_rows
    }

    /// The structural index (for the index-size and determinism experiments).
    pub fn structural_index(&self) -> &JsonStructuralIndex {
        &self.inner.index
    }

    fn entry_value(&self, entry: TokenEntry) -> Result<Value> {
        let inner = &self.inner;
        let slice = &inner.data[entry.start as usize..entry.end as usize];
        match entry.token_type {
            TokenType::Null => Ok(Value::Null),
            TokenType::Bool => Ok(Value::Bool(slice.starts_with(b"true"))),
            TokenType::Number => {
                let text = std::str::from_utf8(slice).unwrap_or("").trim();
                if text.contains('.') || text.contains('e') || text.contains('E') {
                    Ok(text.parse::<f64>().map(Value::Float).unwrap_or(Value::Null))
                } else {
                    Ok(text.parse::<i64>().map(Value::Int).unwrap_or(Value::Null))
                }
            }
            TokenType::String => {
                let mut parser = JsonParser::new(&inner.data, entry.start as usize);
                Ok(Value::Str(parser.parse_string()?))
            }
            TokenType::Object | TokenType::Array => parse_json_value(slice),
        }
    }

    fn lookup_path(&self, oid: Oid, dotted: &str) -> Result<Option<TokenEntry>> {
        if oid as usize >= self.inner.index.object_count() {
            return Err(PluginError::OidOutOfRange {
                dataset: self.inner.dataset.clone(),
                oid,
            });
        }
        Ok(self.inner.index.lookup(oid as usize, dotted))
    }

    /// Raw token text of a numeric field, or `None` when the field is
    /// missing or holds a non-number token (e.g. `null`) — the shared miss
    /// definition of the nullable numeric accessors and typed fills.
    fn numeric_field_text(&self, oid: Oid, dotted: &str) -> Option<&str> {
        let entry = self.lookup_path(oid, dotted).ok().flatten()?;
        if entry.token_type != TokenType::Number {
            return None;
        }
        std::str::from_utf8(&self.inner.data[entry.start as usize..entry.end as usize]).ok()
    }
}

/// Maps a token to the [`DataType`] it evidences (`Null` → `Any`).
fn token_data_type(data: &[u8], entry: &TokenEntry) -> DataType {
    match entry.token_type {
        TokenType::Number => {
            let text =
                std::str::from_utf8(&data[entry.start as usize..entry.end as usize]).unwrap_or("");
            if text.contains('.') || text.contains('e') {
                DataType::Float
            } else {
                DataType::Int
            }
        }
        TokenType::String => DataType::String,
        TokenType::Bool => DataType::Bool,
        TokenType::Array => DataType::Collection(
            proteus_algebra::CollectionKind::List,
            Box::new(DataType::Any),
        ),
        TokenType::Object => DataType::Record(vec![]),
        TokenType::Null => DataType::Any,
    }
}

/// Infers a top-level schema from the first object's tokens (skipping the
/// empty sentinels a `Null` bad-row policy leaves behind, so a damaged
/// leading object does not erase the schema).
fn infer_schema(data: &[u8], index: &JsonStructuralIndex) -> Schema {
    let mut fields = Vec::new();
    let first = if index.shared_layout.is_some() {
        index.objects.first()
    } else {
        index
            .objects
            .iter()
            .find(|o| !o.level0.is_empty())
            .or_else(|| index.objects.first())
    };
    if let Some(first) = first {
        let paths: Vec<(String, u32)> = if let Some(shared) = &index.shared_layout {
            let mut v: Vec<(String, u32)> = shared.iter().map(|(p, s)| (p.clone(), *s)).collect();
            v.sort_by_key(|(_, slot)| *slot);
            v
        } else {
            first.level0.clone()
        };
        for (path, slot) in paths {
            // Top-level fields only (nested ones are reachable via readPath).
            if path.contains('.') {
                continue;
            }
            let entry = first.entries[slot as usize];
            let mut data_type = token_data_type(data, &entry);
            if matches!(data_type, DataType::Any) {
                // A leading `null` says nothing about the field's type: look
                // ahead a bounded number of objects for the first non-null
                // token so a nullable numeric column still types (and
                // vectorizes) as numeric.
                for oid in 1..index.object_count().min(64) {
                    if let Some(later) = index.lookup(oid, &path) {
                        if later.token_type != TokenType::Null {
                            data_type = token_data_type(data, &later);
                            break;
                        }
                    }
                }
            }
            fields.push(Field::nullable(path, data_type));
        }
    }
    Schema::new(fields)
}

fn collect_stats(data: &[u8], index: &JsonStructuralIndex, schema: &Schema) -> DatasetStats {
    let mut stats = DatasetStats::with_cardinality(index.object_count() as u64);
    for field in schema.fields() {
        if !field.data_type.is_numeric() {
            continue;
        }
        let mut collector = StatsCollector::new();
        for oid in 0..index.object_count() {
            if let Some(entry) = index.lookup(oid, &field.name) {
                let slice = &data[entry.start as usize..entry.end as usize];
                let text = std::str::from_utf8(slice).unwrap_or("").trim();
                let value = if matches!(field.data_type, DataType::Float) {
                    text.parse::<f64>().map(Value::Float).unwrap_or(Value::Null)
                } else {
                    text.parse::<i64>().map(Value::Int).unwrap_or(Value::Null)
                };
                collector.observe(&value);
            }
        }
        stats.columns.insert(field.name.clone(), collector.finish());
    }
    stats
}

impl InputPlugin for JsonPlugin {
    fn dataset(&self) -> &str {
        &self.inner.dataset
    }

    fn format(&self) -> SourceFormat {
        SourceFormat::Json
    }

    fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    fn len(&self) -> u64 {
        self.inner.index.object_count() as u64
    }

    fn generate(&self, fields: &[String]) -> Result<ScanAccessors> {
        crate::fault::check("json.decode").map_err(|detail| PluginError::Malformed {
            dataset: self.inner.dataset.clone(),
            detail,
        })?;
        let mut accessors = Vec::with_capacity(fields.len());
        let mut typed_fields = Vec::new();
        for field in fields {
            let data_type = self
                .inner
                .schema
                .field(field)
                .map(|f| f.data_type.clone())
                .unwrap_or(DataType::Any);
            let plugin = self.clone();
            let dotted = field.clone();
            let accessor = match data_type {
                // Numeric fields are null-preserving on *both* paths: the
                // row-major accessor yields `Value::Null` for a missing
                // field or a `null` token (matching `read_value` and what
                // the row/document baselines load), and the hand-built
                // typed fill lands the same misses in the typed column's
                // packed null bitmap — so aggregates skip them identically
                // in the closure and kernel tiers.
                DataType::Int => {
                    let fill_plugin = self.clone();
                    let fill_path = field.clone();
                    let fill: crate::api::TypedFill =
                        Arc::new(move |start, count, out: &mut crate::api::TypedColumn| {
                            out.begin(crate::api::TypedKind::I64, count);
                            for oid in start..start + count as Oid {
                                match fill_plugin
                                    .numeric_field_text(oid, &fill_path)
                                    .and_then(|s| s.trim().parse::<i64>().ok())
                                {
                                    Some(v) => out.push_i64(v),
                                    None => out.push_null(),
                                }
                            }
                        });
                    typed_fields.push((field.clone(), crate::api::TypedKind::I64, fill));
                    FieldAccessor::Generic(Arc::new(move |oid| {
                        plugin
                            .numeric_field_text(oid, &dotted)
                            .and_then(|s| s.trim().parse::<i64>().ok())
                            .map(Value::Int)
                            .unwrap_or(Value::Null)
                    }))
                }
                DataType::Float => {
                    let fill_plugin = self.clone();
                    let fill_path = field.clone();
                    let fill: crate::api::TypedFill =
                        Arc::new(move |start, count, out: &mut crate::api::TypedColumn| {
                            out.begin(crate::api::TypedKind::F64, count);
                            for oid in start..start + count as Oid {
                                match fill_plugin
                                    .numeric_field_text(oid, &fill_path)
                                    .and_then(|s| s.trim().parse::<f64>().ok())
                                {
                                    Some(v) => out.push_f64(v),
                                    None => out.push_null(),
                                }
                            }
                        });
                    typed_fields.push((field.clone(), crate::api::TypedKind::F64, fill));
                    FieldAccessor::Generic(Arc::new(move |oid| {
                        plugin
                            .numeric_field_text(oid, &dotted)
                            .and_then(|s| s.trim().parse::<f64>().ok())
                            .map(Value::Float)
                            .unwrap_or(Value::Null)
                    }))
                }
                DataType::String => FieldAccessor::Str(Arc::new(move |oid| {
                    plugin
                        .lookup_path(oid, &dotted)
                        .ok()
                        .flatten()
                        .and_then(|e| plugin.entry_value(e).ok())
                        .and_then(|v| match v {
                            Value::Str(s) => Some(s),
                            _ => None,
                        })
                        .unwrap_or_default()
                })),
                _ => FieldAccessor::Generic(Arc::new(move |oid| {
                    plugin
                        .lookup_path(oid, &dotted)
                        .ok()
                        .flatten()
                        .and_then(|e| plugin.entry_value(e).ok())
                        .unwrap_or(Value::Null)
                })),
            };
            accessors.push((field.clone(), accessor));
        }
        let access_path = if self.inner.index.is_deterministic() {
            "json(structural-index, deterministic layout, level-0 dropped)".to_string()
        } else {
            "json(structural-index level-0 + level-1)".to_string()
        };
        // Morsel path: one structural-index walk per value but one accessor
        // dispatch per (field, morsel). String fields get accessor-derived
        // typed fills; the hand-built nullable Int/Float fills are appended
        // on top; bool/nested fields stay on the closure path.
        let mut scan = ScanAccessors::from_accessors(self.len(), accessors, access_path)
            .with_bad_rows(self.inner.bad_rows);
        scan.typed_fields.extend(typed_fields);
        Ok(crate::fault::instrument_scan(scan, "json.decode"))
    }

    fn read_value(&self, oid: Oid, field: &str) -> Result<Value> {
        match self.lookup_path(oid, field)? {
            Some(entry) => self.entry_value(entry),
            None => Ok(Value::Null),
        }
    }

    fn read_path(&self, oid: Oid, path: &[String]) -> Result<Value> {
        let dotted = path.join(".");
        match self.lookup_path(oid, &dotted)? {
            Some(entry) => self.entry_value(entry),
            None => {
                // The path may traverse an array or an unregistered nested
                // field: fall back to materializing the top-level field and
                // navigating in memory.
                if let Some(first) = path.first() {
                    match self.lookup_path(oid, first)? {
                        Some(entry) => {
                            let value = self.entry_value(entry)?;
                            Ok(value.navigate(&path[1..]))
                        }
                        None => Ok(Value::Null),
                    }
                } else {
                    Ok(Value::Null)
                }
            }
        }
    }

    fn unnest_init(&self, oid: Oid, path: &[String]) -> Result<UnnestCursor> {
        let dotted = path.join(".");
        let entry = self.lookup_path(oid, &dotted)?;
        match entry {
            Some(entry) if entry.token_type == TokenType::Array => {
                let value = self.entry_value(entry)?;
                match value {
                    Value::List(items) => Ok(UnnestCursor::new(items)),
                    _ => Ok(UnnestCursor::new(Vec::new())),
                }
            }
            Some(_) | None => Ok(UnnestCursor::new(Vec::new())),
        }
    }

    fn statistics(&self) -> DatasetStats {
        self.inner.stats.clone()
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile::json()
    }

    fn zone_maps(&self, fields: &[String]) -> Vec<(String, Arc<ZoneMap>)> {
        derive_zone_maps(&self.inner.zone_maps, fields, |missing| {
            self.generate(missing).ok()
        })
    }

    fn cached_zone_maps(&self) -> Vec<(String, Arc<ZoneMap>)> {
        self.inner
            .zone_maps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(n, zm)| (n.clone(), zm.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_4_object() -> &'static str {
        r#"{"a": 1, "b": "two", "c": {"d": {"d1": 3}}, "e": [10, 20, 30], "f": [{"x": 1}, {"x": 2}]}"#
    }

    fn ndjson_sample() -> String {
        let mut s = String::new();
        for i in 0..20 {
            s.push_str(&format!(
                "{{\"orderkey\": {i}, \"price\": {:.2}, \"comment\": \"obj {i}\", \"items\": [{}]}}\n",
                i as f64 * 2.5,
                (0..(i % 3)).map(|j| format!("{{\"qty\": {j}}}")).collect::<Vec<_>>().join(", ")
            ));
        }
        s
    }

    #[test]
    fn parse_json_value_round_trips_figure_4() {
        let v = parse_json_value(figure_4_object().as_bytes()).unwrap();
        let rec = v.as_record().unwrap();
        assert_eq!(rec.get("a"), Some(&Value::Int(1)));
        assert_eq!(rec.get("b"), Some(&Value::Str("two".into())));
        let path = vec!["c".to_string(), "d".to_string(), "d1".to_string()];
        assert_eq!(v.navigate(&path), Value::Int(3));
        assert_eq!(rec.get("e").unwrap().as_list().unwrap().len(), 3);
    }

    #[test]
    fn index_registers_nested_records_but_not_array_contents() {
        let plugin =
            JsonPlugin::from_bytes("fig4", Bytes::from(figure_4_object().to_string())).unwrap();
        let index = plugin.structural_index();
        assert_eq!(index.object_count(), 1);
        // Nested record path is directly addressable.
        assert!(index.lookup(0, "c.d.d1").is_some());
        // Array contents are not registered in Level 0.
        assert!(index.lookup(0, "e.0").is_none());
        assert!(index.lookup(0, "f.x").is_none());
    }

    #[test]
    fn read_value_and_path() {
        let plugin =
            JsonPlugin::from_bytes("fig4", Bytes::from(figure_4_object().to_string())).unwrap();
        assert_eq!(plugin.read_value(0, "a").unwrap(), Value::Int(1));
        assert_eq!(plugin.read_value(0, "b").unwrap(), Value::Str("two".into()));
        assert_eq!(
            plugin
                .read_path(0, &["c".into(), "d".into(), "d1".into()])
                .unwrap(),
            Value::Int(3)
        );
        // Missing fields are null, not errors (JSON optionality).
        assert_eq!(plugin.read_value(0, "missing").unwrap(), Value::Null);
    }

    #[test]
    fn unnest_iterates_array_elements() {
        let plugin =
            JsonPlugin::from_bytes("fig4", Bytes::from(figure_4_object().to_string())).unwrap();
        let cursor = plugin.unnest_init(0, &["e".to_string()]).unwrap();
        let items: Vec<Value> = cursor.collect();
        assert_eq!(items, vec![Value::Int(10), Value::Int(20), Value::Int(30)]);
        let cursor = plugin.unnest_init(0, &["f".to_string()]).unwrap();
        assert_eq!(cursor.count(), 2);
        // Unnesting a non-array or missing field yields an empty cursor.
        assert_eq!(
            plugin.unnest_init(0, &["a".to_string()]).unwrap().count(),
            0
        );
        assert_eq!(
            plugin.unnest_init(0, &["zzz".to_string()]).unwrap().count(),
            0
        );
    }

    #[test]
    fn ndjson_objects_get_oids_in_order() {
        let plugin = JsonPlugin::from_bytes("orders", Bytes::from(ndjson_sample())).unwrap();
        assert_eq!(plugin.len(), 20);
        for oid in 0..20u64 {
            assert_eq!(
                plugin.read_value(oid, "orderkey").unwrap(),
                Value::Int(oid as i64)
            );
        }
    }

    #[test]
    fn deterministic_layout_detected_for_uniform_objects() {
        let plugin = JsonPlugin::from_bytes("orders", Bytes::from(ndjson_sample())).unwrap();
        assert!(plugin.structural_index().is_deterministic());
        assert!(plugin
            .generate(&["orderkey".into()])
            .unwrap()
            .access_path
            .contains("deterministic"));
        // Level 0 dropped: per-object maps are empty.
        assert!(plugin
            .structural_index()
            .objects
            .iter()
            .all(|o| o.level0.is_empty()));
    }

    #[test]
    fn shuffled_field_order_disables_determinism_but_still_works() {
        let data = r#"{"a": 1, "b": 2}
{"b": 20, "a": 10}
"#;
        let plugin = JsonPlugin::from_bytes("t", Bytes::from(data.to_string())).unwrap();
        assert!(!plugin.structural_index().is_deterministic());
        assert_eq!(plugin.read_value(0, "a").unwrap(), Value::Int(1));
        assert_eq!(plugin.read_value(1, "a").unwrap(), Value::Int(10));
        assert_eq!(plugin.read_value(1, "b").unwrap(), Value::Int(20));
    }

    #[test]
    fn top_level_array_form_is_supported() {
        let data = r#"[{"x": 1}, {"x": 2}, {"x": 3}]"#;
        let plugin = JsonPlugin::from_bytes("arr", Bytes::from(data.to_string())).unwrap();
        assert_eq!(plugin.len(), 3);
        assert_eq!(plugin.read_value(2, "x").unwrap(), Value::Int(3));
    }

    #[test]
    fn generated_accessors_match_read_value() {
        let plugin = JsonPlugin::from_bytes("orders", Bytes::from(ndjson_sample())).unwrap();
        let scan = plugin
            .generate(&[
                "orderkey".to_string(),
                "price".to_string(),
                "comment".to_string(),
            ])
            .unwrap();
        let key = scan.field("orderkey").unwrap();
        let price = scan.field("price").unwrap();
        let comment = scan.field("comment").unwrap();
        for oid in 0..plugin.len() {
            assert_eq!(
                Value::Int(key.as_i64(oid)),
                plugin.read_value(oid, "orderkey").unwrap()
            );
            assert_eq!(
                Value::Float(price.as_f64(oid)),
                plugin.read_value(oid, "price").unwrap()
            );
            assert_eq!(
                comment.value(oid),
                plugin.read_value(oid, "comment").unwrap()
            );
        }
    }

    #[test]
    fn schema_inference_covers_top_level_fields() {
        let plugin = JsonPlugin::from_bytes("orders", Bytes::from(ndjson_sample())).unwrap();
        let schema = plugin.schema();
        assert_eq!(schema.field("orderkey").unwrap().data_type, DataType::Int);
        assert_eq!(schema.field("price").unwrap().data_type, DataType::Float);
        assert_eq!(schema.field("comment").unwrap().data_type, DataType::String);
        assert!(matches!(
            schema.field("items").unwrap().data_type,
            DataType::Collection(_, _)
        ));
    }

    #[test]
    fn statistics_computed_for_numeric_fields() {
        let plugin = JsonPlugin::from_bytes("orders", Bytes::from(ndjson_sample())).unwrap();
        let stats = plugin.statistics();
        assert_eq!(stats.cardinality, 20);
        let key = stats.column("orderkey").unwrap();
        assert_eq!(key.min, Value::Int(0));
        assert_eq!(key.max, Value::Int(19));
    }

    #[test]
    fn index_size_reported_and_smaller_when_deterministic() {
        let uniform = JsonPlugin::from_bytes("u", Bytes::from(ndjson_sample())).unwrap();
        let mut shuffled_text = String::new();
        for i in 0..20 {
            if i % 2 == 0 {
                shuffled_text.push_str(&format!(
                    "{{\"orderkey\": {i}, \"price\": 1.0, \"comment\": \"c\", \"items\": []}}\n"
                ));
            } else {
                shuffled_text.push_str(&format!(
                    "{{\"price\": 1.0, \"orderkey\": {i}, \"comment\": \"c\", \"items\": []}}\n"
                ));
            }
        }
        let shuffled = JsonPlugin::from_bytes("s", Bytes::from(shuffled_text)).unwrap();
        assert!(uniform.structural_index().is_deterministic());
        assert!(!shuffled.structural_index().is_deterministic());
        assert!(uniform.structural_index().size_bytes() > 0);
        // Same number of objects/fields: the deterministic index must be
        // more compact because it stores path strings once.
        assert!(uniform.structural_index().size_bytes() < shuffled.structural_index().size_bytes());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(JsonPlugin::from_bytes("bad", Bytes::from_static(b"{\"a\": }")).is_err());
        assert!(JsonPlugin::from_bytes("bad", Bytes::from_static(b"{\"a\" 1}")).is_err());
        assert!(parse_json_value(b"[1, 2,").is_err());
    }

    #[test]
    fn oid_out_of_range_is_error() {
        let plugin =
            JsonPlugin::from_bytes("fig4", Bytes::from(figure_4_object().to_string())).unwrap();
        assert!(matches!(
            plugin.read_value(5, "a"),
            Err(PluginError::OidOutOfRange { .. })
        ));
    }
}
