//! # proteus-plugins
//!
//! The custom data access layer of the Proteus reproduction (§5.2).
//!
//! Every supported data format is wrapped by an *input plug-in* that exposes
//! the uniform API of Table 2 (`generate`, `readValue`, `readPath`,
//! `unnestInit`/`unnestHasNext`/`unnestGetNext`, `hashValue`, `flushValue`)
//! and, crucially, *specializes* its access primitives per query and per
//! dataset instance:
//!
//! * [`csv`] — CSV files with a structural index storing the byte positions
//!   of every Nth field of each row, plus a fixed-width fast path when all
//!   rows have the same layout.
//! * [`json`] — JSON files with the two-level structural index of Figure 4
//!   (Level 1: token positions, Level 0: field-name → position map) and the
//!   deterministic variant for machine-generated data with stable field
//!   order.
//! * [`binary`] — relational binary data, both column-oriented
//!   ([`binary::ColumnPlugin`]) and row-oriented ([`binary::RowPlugin`]).
//! * [`cache`] — the plug-in that exposes materialized caches as an
//!   additional input dataset (§6).
//! * [`api`] — the plug-in trait plus the specialized accessors plug-ins
//!   hand to the generated query pipelines.
//! * [`stats`] — per-dataset statistics and the per-plug-in cost profiles the
//!   optimizer consumes.
//! * [`zonemap`] — per-morsel min/max/null zone maps: the statistics the
//!   engine consults to skip or short-circuit whole morsels before any lanes
//!   render.
//! * [`registry`] — maps dataset names to plug-ins and auto-detects formats.
//! * [`fault`] — the failpoint-style fault-injection harness the chaos
//!   tests use to fire every failure path deterministically.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod api;
pub mod binary;
pub mod cache;
pub mod csv;
pub mod error;
pub mod fault;
pub mod json;
pub mod registry;
pub mod stats;
pub mod zonemap;

pub use api::{
    column_batch_fill, column_typed_fill, BadRowPolicy, BatchFill, FieldAccessor, InputPlugin, Oid,
    ScanAccessors, TypedColumn, TypedFill, TypedKind, UnnestCursor,
};
pub use error::{PluginError, Result};
pub use registry::PluginRegistry;
pub use stats::{ColumnStats, CostProfile, DatasetStats};
pub use zonemap::{ZoneEntry, ZoneMap, ZONE_ROWS};
