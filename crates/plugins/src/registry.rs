//! The plug-in registry: maps dataset names to input plug-ins.
//!
//! The registry is what the rest of the engine sees: operators and the
//! optimizer ask it for the plug-in of a dataset; registration either takes
//! an explicit plug-in or auto-detects the format from a file extension
//! (`.csv`/`.tbl`, `.json`/`.ndjson`, `.prow`, or a column-table directory).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::RwLock;
use proteus_algebra::Schema;
use proteus_storage::MemoryManager;

use crate::api::InputPlugin;
use crate::binary::{ColumnPlugin, RowPlugin};
use crate::csv::{CsvOptions, CsvPlugin};
use crate::error::{PluginError, Result};
use crate::json::JsonPlugin;

/// A shared, thread-safe registry of dataset plug-ins.
#[derive(Clone, Default)]
pub struct PluginRegistry {
    plugins: Arc<RwLock<HashMap<String, Arc<dyn InputPlugin>>>>,
}

impl PluginRegistry {
    /// Creates an empty registry.
    pub fn new() -> PluginRegistry {
        PluginRegistry::default()
    }

    /// Registers an explicit plug-in for a dataset name.
    pub fn register(&self, plugin: Arc<dyn InputPlugin>) {
        self.plugins
            .write()
            .insert(plugin.dataset().to_string(), plugin);
    }

    /// Registers a CSV file.
    pub fn register_csv(
        &self,
        dataset: impl Into<String>,
        path: impl AsRef<Path>,
        schema: Schema,
        options: CsvOptions,
        memory: &MemoryManager,
    ) -> Result<()> {
        let plugin = CsvPlugin::open(dataset, path, schema, options, memory)?;
        self.register(Arc::new(plugin));
        Ok(())
    }

    /// Registers a CSV file under an explicit bad-row policy.
    pub fn register_csv_with_policy(
        &self,
        dataset: impl Into<String>,
        path: impl AsRef<Path>,
        schema: Schema,
        options: CsvOptions,
        memory: &MemoryManager,
        policy: crate::api::BadRowPolicy,
    ) -> Result<()> {
        let plugin = CsvPlugin::open_with_policy(dataset, path, schema, options, memory, policy)?;
        self.register(Arc::new(plugin));
        Ok(())
    }

    /// Registers a JSON file.
    pub fn register_json(
        &self,
        dataset: impl Into<String>,
        path: impl AsRef<Path>,
        memory: &MemoryManager,
    ) -> Result<()> {
        let plugin = JsonPlugin::open(dataset, path, memory)?;
        self.register(Arc::new(plugin));
        Ok(())
    }

    /// Registers a JSON file under an explicit bad-row policy.
    pub fn register_json_with_policy(
        &self,
        dataset: impl Into<String>,
        path: impl AsRef<Path>,
        memory: &MemoryManager,
        policy: crate::api::BadRowPolicy,
    ) -> Result<()> {
        let plugin = JsonPlugin::open_with_policy(dataset, path, memory, policy)?;
        self.register(Arc::new(plugin));
        Ok(())
    }

    /// Registers a binary column-table directory.
    pub fn register_columns(
        &self,
        dataset: impl Into<String>,
        dir: impl AsRef<Path>,
    ) -> Result<()> {
        let plugin = ColumnPlugin::open(dataset, dir)?;
        self.register(Arc::new(plugin));
        Ok(())
    }

    /// Registers a binary row file.
    pub fn register_rows(
        &self,
        dataset: impl Into<String>,
        path: impl AsRef<Path>,
        memory: &MemoryManager,
    ) -> Result<()> {
        let plugin = RowPlugin::open(dataset, path, memory)?;
        self.register(Arc::new(plugin));
        Ok(())
    }

    /// Registers a dataset by auto-detecting its format from the path:
    /// directories are treated as column tables, `.prow` as binary rows,
    /// `.json`/`.ndjson` as JSON, `.csv`/`.tbl` as pipe-delimited CSV (the
    /// TPC-H convention); anything else is an error.
    pub fn register_auto(
        &self,
        dataset: impl Into<String>,
        path: impl AsRef<Path>,
        schema: Option<Schema>,
        memory: &MemoryManager,
    ) -> Result<()> {
        let dataset = dataset.into();
        let path = path.as_ref();
        if path.is_dir() {
            return self.register_columns(dataset, path);
        }
        match path.extension().and_then(|e| e.to_str()).unwrap_or("") {
            "prow" => self.register_rows(dataset, path, memory),
            "json" | "ndjson" => self.register_json(dataset, path, memory),
            "csv" | "tbl" => {
                let schema = schema.ok_or_else(|| {
                    PluginError::Unsupported(format!(
                        "CSV dataset {dataset} requires an explicit schema"
                    ))
                })?;
                self.register_csv(dataset, path, schema, CsvOptions::default(), memory)
            }
            other => Err(PluginError::Unsupported(format!(
                "cannot auto-detect format for extension '{other}'"
            ))),
        }
    }

    /// Looks a plug-in up by dataset name.
    pub fn get(&self, dataset: &str) -> Option<Arc<dyn InputPlugin>> {
        self.plugins.read().get(dataset).cloned()
    }

    /// Looks a plug-in up or errors.
    pub fn require(&self, dataset: &str) -> Result<Arc<dyn InputPlugin>> {
        self.get(dataset).ok_or_else(|| PluginError::UnknownField {
            dataset: dataset.to_string(),
            field: "<dataset not registered>".to_string(),
        })
    }

    /// Registered dataset names.
    pub fn datasets(&self) -> Vec<String> {
        self.plugins.read().keys().cloned().collect()
    }

    /// Schema of a registered dataset (what the SQL front-end uses to resolve
    /// unqualified columns).
    pub fn schema_of(&self, dataset: &str) -> Option<Schema> {
        self.get(dataset).map(|p| p.schema().clone())
    }

    /// Removes a dataset registration.
    pub fn unregister(&self, dataset: &str) -> bool {
        self.plugins.write().remove(dataset).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_algebra::DataType;
    use std::fs;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("proteus_registry_tests")
            .join(name);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn auto_detects_json_and_csv() {
        let dir = temp_dir("auto");
        let json_path = dir.join("events.json");
        fs::write(&json_path, "{\"x\": 1}\n{\"x\": 2}\n").unwrap();
        let csv_path = dir.join("table.csv");
        fs::write(&csv_path, "1|a\n2|b\n").unwrap();

        let memory = MemoryManager::new();
        let registry = PluginRegistry::new();
        registry
            .register_auto("events", &json_path, None, &memory)
            .unwrap();
        registry
            .register_auto(
                "table",
                &csv_path,
                Some(Schema::from_pairs(vec![
                    ("id", DataType::Int),
                    ("name", DataType::String),
                ])),
                &memory,
            )
            .unwrap();

        assert_eq!(registry.get("events").unwrap().len(), 2);
        assert_eq!(registry.get("table").unwrap().len(), 2);
        assert!(registry
            .schema_of("table")
            .unwrap()
            .index_of("name")
            .is_some());
        let mut names = registry.datasets();
        names.sort();
        assert_eq!(names, vec!["events", "table"]);
    }

    #[test]
    fn csv_without_schema_is_rejected() {
        let dir = temp_dir("noschema");
        let csv_path = dir.join("x.csv");
        fs::write(&csv_path, "1|2\n").unwrap();
        let registry = PluginRegistry::new();
        assert!(registry
            .register_auto("x", &csv_path, None, &MemoryManager::new())
            .is_err());
    }

    #[test]
    fn unknown_extension_is_rejected() {
        let dir = temp_dir("unknown");
        let path = dir.join("data.xyz");
        fs::write(&path, "?").unwrap();
        let registry = PluginRegistry::new();
        assert!(registry
            .register_auto("x", &path, None, &MemoryManager::new())
            .is_err());
    }

    #[test]
    fn require_and_unregister() {
        let registry = PluginRegistry::new();
        assert!(registry.require("ghost").is_err());
        assert!(!registry.unregister("ghost"));
    }

    #[test]
    fn column_table_directory_is_detected() {
        let dir = temp_dir("cols").join("lineitem");
        proteus_storage::ColumnTable::write(
            &dir,
            &[(
                "l_orderkey".to_string(),
                proteus_storage::ColumnData::Int(vec![1, 2, 3]),
            )],
        )
        .unwrap();
        let registry = PluginRegistry::new();
        registry
            .register_auto("lineitem", &dir, None, &MemoryManager::new())
            .unwrap();
        assert_eq!(registry.get("lineitem").unwrap().len(), 3);
    }
}
