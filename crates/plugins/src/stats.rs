//! Per-dataset statistics and per-plug-in cost profiles (§5.2, "Enabling
//! Cost-based Optimizations").
//!
//! "Proteus uses a metadata store to maintain statistics per data source,
//! namely dataset cardinalities and min/max values per attribute, and
//! delegates statistics collection to each input plug-in. [...] Regarding
//! costing, each input plug-in uses different cost formulas, which it
//! instantiates with data statistics to provide cost estimates to the query
//! optimizer."

use std::collections::HashMap;

use proteus_algebra::Value;

/// Min/max/distinct statistics for a single attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest observed value.
    pub min: Value,
    /// Largest observed value.
    pub max: Value,
    /// Approximate number of distinct values (exact for small samples).
    pub distinct: u64,
    /// Number of null/missing occurrences.
    pub nulls: u64,
}

impl ColumnStats {
    /// Statistics of an empty column.
    pub fn empty() -> ColumnStats {
        ColumnStats {
            min: Value::Null,
            max: Value::Null,
            distinct: 0,
            nulls: 0,
        }
    }

    /// Folds another partial statistic into this one: min/max widen through
    /// `Value::total_cmp` (ignoring `Null` bounds), null counts add. This is
    /// the aggregation path the per-morsel zone maps use to produce the
    /// dataset-level statistics, so the two representations cannot drift.
    /// Distinct counts are not mergeable from bounds; the larger estimate
    /// wins.
    pub fn merge(&mut self, other: &ColumnStats) {
        if !other.min.is_null()
            && (self.min.is_null() || other.min.total_cmp(&self.min) == std::cmp::Ordering::Less)
        {
            self.min = other.min.clone();
        }
        if !other.max.is_null()
            && (self.max.is_null() || other.max.total_cmp(&self.max) == std::cmp::Ordering::Greater)
        {
            self.max = other.max.clone();
        }
        self.nulls += other.nulls;
        self.distinct = self.distinct.max(other.distinct);
    }

    /// Estimated selectivity of the predicate `attr < bound` assuming a
    /// uniform distribution between min and max. Falls back to the paper's
    /// default (10 %) when the statistics cannot answer.
    pub fn selectivity_lt(&self, bound: &Value) -> f64 {
        match (self.min.as_float(), self.max.as_float(), bound.as_float()) {
            (Ok(min), Ok(max), Ok(b)) if max > min => ((b - min) / (max - min)).clamp(0.0, 1.0),
            _ => DEFAULT_SELECTIVITY,
        }
    }

    /// Estimated selectivity of the predicate `attr = literal`.
    pub fn selectivity_eq(&self) -> f64 {
        if self.distinct > 0 {
            (1.0 / self.distinct as f64).min(1.0)
        } else {
            DEFAULT_SELECTIVITY
        }
    }
}

/// The paper's baseline assumption when no statistics exist: "assume that the
/// default selectivity of a predicate is 10%".
pub const DEFAULT_SELECTIVITY: f64 = 0.10;

/// Statistics for one dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatasetStats {
    /// Number of data objects.
    pub cardinality: u64,
    /// Per-attribute statistics (keyed by top-level field name).
    pub columns: HashMap<String, ColumnStats>,
    /// True if the statistics came from a sample rather than a full pass.
    pub sampled: bool,
}

impl DatasetStats {
    /// Creates statistics with just a cardinality.
    pub fn with_cardinality(cardinality: u64) -> DatasetStats {
        DatasetStats {
            cardinality,
            columns: HashMap::new(),
            sampled: false,
        }
    }

    /// Statistics for one attribute, if collected.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Selectivity estimate for `attr < bound`, using the default when the
    /// attribute has no statistics.
    pub fn selectivity_lt(&self, attr: &str, bound: &Value) -> f64 {
        self.columns
            .get(attr)
            .map(|c| c.selectivity_lt(bound))
            .unwrap_or(DEFAULT_SELECTIVITY)
    }
}

/// Builds [`ColumnStats`] incrementally while a plug-in scans values (cold
/// access / materialization-time statistics collection).
#[derive(Debug, Clone, Default)]
pub struct StatsCollector {
    values_seen: u64,
    min: Option<Value>,
    max: Option<Value>,
    nulls: u64,
    distinct_sample: Vec<u64>,
}

impl StatsCollector {
    /// Creates an empty collector.
    pub fn new() -> StatsCollector {
        StatsCollector::default()
    }

    /// Folds one value into the running statistics.
    pub fn observe(&mut self, value: &Value) {
        self.values_seen += 1;
        if value.is_null() {
            self.nulls += 1;
            return;
        }
        let replace_min = match &self.min {
            None => true,
            Some(m) => value.total_cmp(m) == std::cmp::Ordering::Less,
        };
        if replace_min {
            self.min = Some(value.clone());
        }
        let replace_max = match &self.max {
            None => true,
            Some(m) => value.total_cmp(m) == std::cmp::Ordering::Greater,
        };
        if replace_max {
            self.max = Some(value.clone());
        }
        // Distinct estimation: keep a bounded sample of hashes.
        let hash = value.stable_hash();
        if self.distinct_sample.len() < 4096 && !self.distinct_sample.contains(&hash) {
            self.distinct_sample.push(hash);
        }
    }

    /// Number of values observed (including nulls).
    pub fn count(&self) -> u64 {
        self.values_seen
    }

    /// Finalizes the statistics.
    pub fn finish(self) -> ColumnStats {
        ColumnStats {
            min: self.min.unwrap_or(Value::Null),
            max: self.max.unwrap_or(Value::Null),
            distinct: self.distinct_sample.len() as u64,
            nulls: self.nulls,
        }
    }
}

/// Per-plug-in cost factors, instantiated with statistics by the optimizer's
/// cost formulas. All factors are relative to reading one already-parsed
/// binary value (cost 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct CostProfile {
    /// Cost of producing one tuple's OID and advancing the scan.
    pub per_tuple_scan: f64,
    /// Cost of extracting + converting one field value.
    pub per_field_access: f64,
    /// Cost of navigating one nesting level (readPath step).
    pub per_path_step: f64,
    /// One-time cost per byte the first time the dataset is accessed
    /// (parsing/validation/index construction), amortized by the optimizer
    /// over expected reuse.
    pub cold_cost_per_byte: f64,
}

impl CostProfile {
    /// Cost profile of binary columnar data: direct positional reads.
    pub fn binary() -> CostProfile {
        CostProfile {
            per_tuple_scan: 1.0,
            per_field_access: 1.0,
            per_path_step: 1.0,
            cold_cost_per_byte: 0.0,
        }
    }

    /// Cost profile of CSV data accessed through a structural index.
    pub fn csv() -> CostProfile {
        CostProfile {
            per_tuple_scan: 2.0,
            per_field_access: 6.0,
            per_path_step: 2.0,
            cold_cost_per_byte: 0.5,
        }
    }

    /// Cost profile of JSON data accessed through a structural index.
    pub fn json() -> CostProfile {
        CostProfile {
            per_tuple_scan: 3.0,
            per_field_access: 10.0,
            per_path_step: 4.0,
            cold_cost_per_byte: 1.0,
        }
    }

    /// Cost profile of a binary cache (cheapest possible access).
    pub fn cache() -> CostProfile {
        CostProfile {
            per_tuple_scan: 0.5,
            per_field_access: 0.5,
            per_path_step: 0.5,
            cold_cost_per_byte: 0.0,
        }
    }

    /// Estimated cost of scanning `tuples` objects touching `fields` fields
    /// each — the textbook formula the default plug-in skeleton provides.
    pub fn scan_cost(&self, tuples: u64, fields: usize) -> f64 {
        tuples as f64 * (self.per_tuple_scan + self.per_field_access * fields as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_tracks_min_max_nulls_distinct() {
        let mut c = StatsCollector::new();
        for v in [
            Value::Int(5),
            Value::Int(1),
            Value::Null,
            Value::Int(9),
            Value::Int(1),
        ] {
            c.observe(&v);
        }
        assert_eq!(c.count(), 5);
        let stats = c.finish();
        assert_eq!(stats.min, Value::Int(1));
        assert_eq!(stats.max, Value::Int(9));
        assert_eq!(stats.nulls, 1);
        assert_eq!(stats.distinct, 3);
    }

    #[test]
    fn selectivity_lt_interpolates() {
        let stats = ColumnStats {
            min: Value::Int(0),
            max: Value::Int(100),
            distinct: 100,
            nulls: 0,
        };
        assert!((stats.selectivity_lt(&Value::Int(50)) - 0.5).abs() < 1e-9);
        assert_eq!(stats.selectivity_lt(&Value::Int(-10)), 0.0);
        assert_eq!(stats.selectivity_lt(&Value::Int(500)), 1.0);
    }

    #[test]
    fn selectivity_defaults_without_stats() {
        let stats = DatasetStats::with_cardinality(100);
        assert_eq!(
            stats.selectivity_lt("missing", &Value::Int(3)),
            DEFAULT_SELECTIVITY
        );
        let empty = ColumnStats::empty();
        assert_eq!(empty.selectivity_lt(&Value::Int(3)), DEFAULT_SELECTIVITY);
        assert_eq!(empty.selectivity_eq(), DEFAULT_SELECTIVITY);
    }

    #[test]
    fn merge_widens_bounds_and_adds_nulls() {
        let mut a = ColumnStats {
            min: Value::Int(5),
            max: Value::Int(9),
            distinct: 3,
            nulls: 1,
        };
        let b = ColumnStats {
            min: Value::Int(1),
            max: Value::Int(7),
            distinct: 2,
            nulls: 4,
        };
        a.merge(&b);
        assert_eq!(a.min, Value::Int(1));
        assert_eq!(a.max, Value::Int(9));
        assert_eq!(a.nulls, 5);
        assert_eq!(a.distinct, 3);
        // Null bounds (empty partials) never narrow or poison the result.
        a.merge(&ColumnStats::empty());
        assert_eq!(a.min, Value::Int(1));
        let mut empty = ColumnStats::empty();
        empty.merge(&a);
        assert_eq!(empty.min, Value::Int(1));
        assert_eq!(empty.max, Value::Int(9));
    }

    #[test]
    fn selectivity_eq_uses_distinct() {
        let stats = ColumnStats {
            min: Value::Int(0),
            max: Value::Int(9),
            distinct: 10,
            nulls: 0,
        };
        assert!((stats.selectivity_eq() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn cost_profiles_rank_formats() {
        let json = CostProfile::json().scan_cost(1000, 3);
        let csv = CostProfile::csv().scan_cost(1000, 3);
        let bin = CostProfile::binary().scan_cost(1000, 3);
        let cache = CostProfile::cache().scan_cost(1000, 3);
        assert!(json > csv && csv > bin && bin > cache);
    }
}
