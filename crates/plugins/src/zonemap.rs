//! Per-morsel zone maps: the morsel-skipping statistics tier (§5.2).
//!
//! The paper's metadata store keeps per-attribute min/max statistics so
//! access paths can be pruned. This module records those statistics at the
//! granularity the execution engine actually dispatches work: one
//! [`ZoneEntry`] per [`ZONE_ROWS`]-row OID range (the morsel size of
//! `proteus-core`). Before a morsel's lanes render, the engine compares the
//! conjunction's per-column bounds against the morsel's zone entry and either
//! skips the morsel entirely (no typed fill, no hydration), short-circuits it
//! to an identity selection, or runs the compare kernels on the ambiguous
//! middle.
//!
//! Zone bounds live in the **`f64` total order** — the comparison domain of
//! the predicate kernels (`i64` lanes compare through their `as f64` view,
//! `-0.0 < 0.0`, NaN sorts last via `f64::total_cmp`) — so a zone verdict is
//! exactly the verdict the kernel mask would have produced for every row of
//! the zone.
//!
//! Binary columns and cache entries build zone maps directly from their raw
//! [`ColumnData`] (a single pass at registration / cache-build time). CSV and
//! JSON plug-ins derive them lazily from the same [`TypedFill`] closures the
//! vectorized scan uses ([`derive_zone_maps`]), which guarantees the bounds
//! agree with the lanes the kernels will see (e.g. a CSV parse miss fills
//! `0`, and that `0` lands in the zone bounds too).
//!
//! The same pass aggregates the dataset-level [`ColumnStats`] through
//! [`ColumnStats::merge`], so the zone tier and the optimizer's statistics
//! cannot drift apart.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use proteus_algebra::Value;
use proteus_storage::ColumnData;

use crate::api::{ScanAccessors, TypedColumn, TypedFill, TypedKind};
use crate::stats::ColumnStats;

/// Rows covered by one zone entry. Must stay equal to the engine's morsel
/// size (`proteus_core::exec::MORSEL_SIZE`, compile-time asserted there) so
/// zone index `z` describes exactly morsel `z`.
pub const ZONE_ROWS: usize = 1024;

/// Statistics of one `ZONE_ROWS`-row OID range of a column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneEntry {
    /// Rows in this zone (only the last zone of a column may be short).
    pub rows: u32,
    /// Null rows in this zone.
    pub null_count: u32,
    /// Smallest non-null value, in the `f64` total-order view (`i64 as f64`).
    /// Meaningful only when [`ZoneEntry::numeric`] is true.
    pub min: f64,
    /// Largest non-null value, in the `f64` total-order view.
    pub max: f64,
    /// True when `min`/`max` are valid: the column is numeric and the zone
    /// holds at least one non-null value.
    pub numeric: bool,
}

impl ZoneEntry {
    fn empty() -> ZoneEntry {
        ZoneEntry {
            rows: 0,
            null_count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            numeric: false,
        }
    }

    /// True when every row of the zone is null.
    pub fn all_null(&self) -> bool {
        self.null_count == self.rows
    }

    /// Non-null rows in the zone.
    pub fn non_null(&self) -> u32 {
        self.rows - self.null_count
    }

    #[inline]
    fn observe(&mut self, view: f64) {
        if !self.numeric {
            self.min = view;
            self.max = view;
            self.numeric = true;
            return;
        }
        if view.total_cmp(&self.min) == std::cmp::Ordering::Less {
            self.min = view;
        }
        if view.total_cmp(&self.max) == std::cmp::Ordering::Greater {
            self.max = view;
        }
    }
}

/// Per-morsel zone map of one column, plus the dataset-level [`ColumnStats`]
/// aggregated from the same pass.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    kind: TypedKind,
    row_count: u64,
    entries: Vec<ZoneEntry>,
    stats: ColumnStats,
}

/// Incremental builder: rows stream in OID order, entries close every
/// [`ZONE_ROWS`] rows, and the dataset-level stats fold through
/// [`ColumnStats::merge`] as each zone completes.
struct ZoneBuilder {
    kind: TypedKind,
    entries: Vec<ZoneEntry>,
    cur: ZoneEntry,
    /// Exact-typed min/max of the *current* zone (`Value::Int` for integer
    /// columns so the aggregated stats keep integer bounds).
    cur_min: Value,
    cur_max: Value,
    total: ColumnStats,
    rows: u64,
}

impl ZoneBuilder {
    fn new(kind: TypedKind) -> ZoneBuilder {
        ZoneBuilder {
            kind,
            entries: Vec::new(),
            cur: ZoneEntry::empty(),
            cur_min: Value::Null,
            cur_max: Value::Null,
            total: ColumnStats::empty(),
            rows: 0,
        }
    }

    #[inline]
    fn observe_value(&mut self, view: f64, exact: Value) {
        self.cur.observe(view);
        if self.cur_min.is_null() || exact.total_cmp(&self.cur_min) == std::cmp::Ordering::Less {
            self.cur_min = exact.clone();
        }
        if self.cur_max.is_null() || exact.total_cmp(&self.cur_max) == std::cmp::Ordering::Greater {
            self.cur_max = exact;
        }
        self.advance();
    }

    #[inline]
    fn observe_null(&mut self) {
        self.cur.null_count += 1;
        self.advance();
    }

    /// Observes a row of a non-numeric column (no bounds, only row/null
    /// accounting).
    #[inline]
    fn observe_opaque(&mut self) {
        self.advance();
    }

    #[inline]
    fn advance(&mut self) {
        self.cur.rows += 1;
        self.rows += 1;
        if self.cur.rows as usize == ZONE_ROWS {
            self.close_zone();
        }
    }

    fn close_zone(&mut self) {
        let zone_stats = ColumnStats {
            min: std::mem::replace(&mut self.cur_min, Value::Null),
            max: std::mem::replace(&mut self.cur_max, Value::Null),
            distinct: 0,
            nulls: self.cur.null_count as u64,
        };
        self.total.merge(&zone_stats);
        self.entries.push(self.cur);
        self.cur = ZoneEntry::empty();
    }

    fn finish(mut self) -> ZoneMap {
        if self.cur.rows > 0 {
            self.close_zone();
        }
        // Distinct counts are not derivable from bounds: use the bounded
        // estimate the plug-ins have always used for raw columns.
        self.total.distinct = (self.rows - self.total.nulls).min(4096);
        ZoneMap {
            kind: self.kind,
            row_count: self.rows,
            entries: self.entries,
            stats: self.total,
        }
    }
}

impl ZoneMap {
    /// Builds the zone map of a raw binary column (registration / cache-build
    /// time; `ColumnData` has no nulls, so every `null_count` is zero).
    pub fn from_column(col: &ColumnData) -> ZoneMap {
        match col {
            ColumnData::Int(v) => {
                let mut b = ZoneBuilder::new(TypedKind::I64);
                for &x in v {
                    b.observe_value(x as f64, Value::Int(x));
                }
                b.finish()
            }
            ColumnData::Float(v) => {
                let mut b = ZoneBuilder::new(TypedKind::F64);
                for &x in v {
                    b.observe_value(x, Value::Float(x));
                }
                b.finish()
            }
            ColumnData::Bool(v) => {
                let mut b = ZoneBuilder::new(TypedKind::Bool);
                for _ in v {
                    b.observe_opaque();
                }
                b.finish()
            }
            ColumnData::Str(v) => {
                let mut b = ZoneBuilder::new(TypedKind::Str);
                for _ in v {
                    b.observe_opaque();
                }
                b.finish()
            }
        }
    }

    /// Derives the zone map by running the scan's own typed fill over every
    /// morsel (the CSV/JSON fallback). The bounds are exactly the lanes the
    /// predicate kernels will compare, nulls included.
    pub fn from_typed_fill(row_count: u64, kind: TypedKind, fill: &TypedFill) -> ZoneMap {
        let mut b = ZoneBuilder::new(kind);
        let mut col = TypedColumn::new(kind);
        let mut start = 0u64;
        while start < row_count {
            let count = ((row_count - start) as usize).min(ZONE_ROWS);
            fill(start, count, &mut col);
            match kind {
                TypedKind::I64 => {
                    for (i, &x) in col.i64_values()[..count].iter().enumerate() {
                        if col.is_null(i) {
                            b.observe_null();
                        } else {
                            b.observe_value(x as f64, Value::Int(x));
                        }
                    }
                }
                TypedKind::F64 => {
                    for (i, &x) in col.f64_values()[..count].iter().enumerate() {
                        if col.is_null(i) {
                            b.observe_null();
                        } else {
                            b.observe_value(x, Value::Float(x));
                        }
                    }
                }
                TypedKind::Bool | TypedKind::Str => {
                    for i in 0..count {
                        if col.is_null(i) {
                            b.observe_null();
                        } else {
                            b.observe_opaque();
                        }
                    }
                }
            }
            start += count as u64;
        }
        b.finish()
    }

    /// Typed kind of the mapped column.
    pub fn kind(&self) -> TypedKind {
        self.kind
    }

    /// Rows covered by the map.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// All zone entries, in OID order.
    pub fn entries(&self) -> &[ZoneEntry] {
        &self.entries
    }

    /// The entry covering OID range `[zone * ZONE_ROWS, ...)`.
    pub fn entry(&self, zone: usize) -> Option<&ZoneEntry> {
        self.entries.get(zone)
    }

    /// Dataset-level statistics aggregated from the zones (min/max/nulls via
    /// [`ColumnStats::merge`]; distinct is a bounded estimate).
    pub fn column_stats(&self) -> &ColumnStats {
        &self.stats
    }
}

/// Shared get-or-derive cache used by the plug-ins whose zone maps come from
/// typed fills (CSV/JSON): already-derived columns are returned as-is,
/// missing ones are derived through `generate` and memoized.
pub fn derive_zone_maps(
    cache: &Mutex<HashMap<String, Arc<ZoneMap>>>,
    fields: &[String],
    generate: impl Fn(&[String]) -> Option<ScanAccessors>,
) -> Vec<(String, Arc<ZoneMap>)> {
    let mut out = Vec::new();
    let mut missing = Vec::new();
    {
        let cached = cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for field in fields {
            match cached.get(field) {
                Some(zm) => out.push((field.clone(), zm.clone())),
                None => missing.push(field.clone()),
            }
        }
    }
    if missing.is_empty() {
        return out;
    }
    if let Some(scan) = generate(&missing) {
        let mut cached = cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (name, kind, fill) in &scan.typed_fields {
            let zm = cached
                .entry(name.clone())
                .or_insert_with(|| Arc::new(ZoneMap::from_typed_fill(scan.row_count, *kind, fill)))
                .clone();
            out.push((name.clone(), zm));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_bounds_per_zone() {
        // Two full zones and a 5-row tail, values 0..2053.
        let col = ColumnData::Int((0..2053).collect());
        let zm = ZoneMap::from_column(&col);
        assert_eq!(zm.row_count(), 2053);
        assert_eq!(zm.entries().len(), 3);
        assert_eq!(zm.entry(0).unwrap().min, 0.0);
        assert_eq!(zm.entry(0).unwrap().max, 1023.0);
        assert_eq!(zm.entry(1).unwrap().min, 1024.0);
        assert_eq!(zm.entry(2).unwrap().rows, 5);
        assert_eq!(zm.entry(2).unwrap().max, 2052.0);
        assert!(zm.entry(3).is_none());
        let stats = zm.column_stats();
        assert_eq!(stats.min, Value::Int(0));
        assert_eq!(stats.max, Value::Int(2052));
        assert_eq!(stats.nulls, 0);
    }

    #[test]
    fn float_zone_bounds_use_the_total_order() {
        let col = ColumnData::Float(vec![0.0, -0.0, 3.5, f64::NAN, -1.0]);
        let zm = ZoneMap::from_column(&col);
        let e = zm.entry(0).unwrap();
        // NaN sorts last in the total order, -0.0 below 0.0.
        assert!(e.max.is_nan());
        assert_eq!(e.min, -1.0);
        assert!(e.numeric);
    }

    #[test]
    fn typed_fill_derivation_tracks_nulls() {
        // A fill that nulls every third row.
        let fill: TypedFill = Arc::new(|start, count, out: &mut TypedColumn| {
            out.begin(TypedKind::I64, count);
            for oid in start..start + count as u64 {
                if oid % 3 == 0 {
                    out.push_null();
                } else {
                    out.push_i64(oid as i64);
                }
            }
        });
        let zm = ZoneMap::from_typed_fill(2000, TypedKind::I64, &fill);
        assert_eq!(zm.entries().len(), 2);
        let e0 = zm.entry(0).unwrap();
        assert_eq!(e0.rows, 1024);
        assert_eq!(e0.null_count, 342); // ceil(1024/3)
        assert!(!e0.all_null());
        assert_eq!(e0.min, 1.0);
        assert_eq!(
            zm.column_stats().nulls,
            342 + zm.entry(1).unwrap().null_count as u64
        );
    }

    #[test]
    fn all_null_zone_is_marked() {
        let fill: TypedFill = Arc::new(|_, count, out: &mut TypedColumn| {
            out.begin(TypedKind::F64, count);
            for _ in 0..count {
                out.push_null();
            }
        });
        let zm = ZoneMap::from_typed_fill(100, TypedKind::F64, &fill);
        let e = zm.entry(0).unwrap();
        assert!(e.all_null());
        assert!(!e.numeric);
        assert_eq!(e.non_null(), 0);
        assert_eq!(zm.column_stats().min, Value::Null);
    }

    #[test]
    fn opaque_kinds_track_rows_only() {
        let col = ColumnData::Str(vec!["a".into(), "b".into()]);
        let zm = ZoneMap::from_column(&col);
        let e = zm.entry(0).unwrap();
        assert_eq!(e.rows, 2);
        assert!(!e.numeric);
    }
}
