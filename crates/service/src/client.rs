//! The matching std-only client.
//!
//! One [`Client`] is one TCP connection with one query in flight at a time:
//! [`Client::query`] writes a query frame and reads `row` frames until the
//! `metrics` (success) or `error` trailer. [`Client::query_with_backoff`]
//! layers the shedding contract on top — an `overloaded` error carries
//! `retry_after_ms`, and the client sleeps exactly that long before each
//! retry.
//!
//! [`Client::cancel_handle`] clones the socket so another thread can send a
//! `cancel` frame while the main thread is blocked reading rows; the server
//! then fails the in-flight query with `kind == "cancelled"`. Dropping the
//! client (closing the socket) mid-query has the same effect server-side.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use proteus_algebra::Value;

use crate::wire;

/// A structured error frame from the server: the stable `kind` tag plus the
/// variant-specific fields (`None` when the variant doesn't carry them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine tag: `algebra`, `plugin`, `storage`, `unknown_dataset`,
    /// `unsupported`, `cancelled`, `deadline_exceeded`, `resource_exhausted`,
    /// `worker_panic`, `overloaded`, or `internal`.
    pub kind: String,
    /// The engine's display message.
    pub message: String,
    /// Shedding hint (`kind == "overloaded"` only).
    pub retry_after_ms: Option<u64>,
    /// Queue depth observed at shedding time (`overloaded` only).
    pub queued: Option<u64>,
    /// Admission queue capacity (`overloaded` only).
    pub capacity: Option<u64>,
    /// The deadline that fired (`deadline_exceeded` only).
    pub timeout_ms: Option<u64>,
    /// The debit site that tripped (`resource_exhausted` / `internal`).
    pub site: Option<String>,
    /// Bytes in use when the budget tripped (`resource_exhausted` only).
    pub used_bytes: Option<u64>,
    /// The budget that tripped (`resource_exhausted` only).
    pub budget_bytes: Option<u64>,
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket itself failed (connect, read, or write).
    Io(std::io::Error),
    /// The server sent something outside the frame grammar.
    Protocol(String),
    /// The server executed the request and reported an engine error.
    Engine(Box<WireError>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Engine(e) => write!(f, "engine error ({}): {}", e.kind, e.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// The subset of [`proteus_core::ExecutionMetrics`] the metrics trailer
/// carries, parsed back into numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Result rows streamed before this trailer.
    pub rows: u64,
    /// Base-data tuples scanned.
    pub tuples_scanned: u64,
    /// Morsels dispatched.
    pub morsels: u64,
    /// Worker-count cap the query ran under.
    pub threads_used: u64,
    /// Distinct scheduler workers that actually touched the query.
    pub workers_touched: u64,
    /// Microseconds spent queued in admission before execution.
    pub queue_wait_us: u64,
    /// Work-stealing slices pool workers contributed.
    pub sched_steals: u64,
    /// Compile time in microseconds.
    pub compile_us: u64,
    /// Execution time in microseconds.
    pub exec_us: u64,
}

/// A successful query: the streamed rows plus the metrics trailer.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Result rows, in arrival order.
    pub rows: Vec<Value>,
    /// The server's metrics trailer.
    pub metrics: WireMetrics,
}

/// Sends `cancel` frames for a [`Client`] from another thread.
pub struct CancelHandle {
    stream: TcpStream,
}

impl CancelHandle {
    /// Asks the server to cancel the connection's in-flight query. The
    /// blocked [`Client::query`] call then returns `kind == "cancelled"`.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        wire::write_frame(&mut self.stream, &wire::cancel_frame())?;
        Ok(())
    }
}

/// One connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// A second handle on the same socket for out-of-band cancels. Safe to
    /// use while `query` is blocked: the handle only *writes* (the reader
    /// thread server-side picks the frame up) and the client thread only
    /// *reads*, so the two never interleave on the same direction.
    pub fn cancel_handle(&self) -> Result<CancelHandle, ClientError> {
        Ok(CancelHandle {
            stream: self.stream.try_clone()?,
        })
    }

    /// Runs one query and collects the full reply.
    pub fn query(&mut self, sql: &str) -> Result<QueryReply, ClientError> {
        wire::write_frame(&mut self.stream, &wire::query_frame(sql))?;
        let mut rows = Vec::new();
        loop {
            let bytes = wire::read_frame(&mut self.stream)?.ok_or_else(|| {
                ClientError::Protocol("server closed the connection mid-reply".to_string())
            })?;
            let frame = wire::value_from_json(&bytes).map_err(ClientError::Protocol)?;
            let record = frame
                .as_record()
                .map_err(|e| ClientError::Protocol(e.to_string()))?;
            match record.get("type").and_then(|v| v.as_str().ok()) {
                Some("row") => rows.push(
                    record
                        .get("row")
                        .cloned()
                        .ok_or_else(|| ClientError::Protocol("row frame without row".into()))?,
                ),
                Some("metrics") => {
                    return Ok(QueryReply {
                        rows,
                        metrics: parse_metrics(record),
                    })
                }
                Some("error") => return Err(ClientError::Engine(Box::new(parse_error(record)))),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame type {other:?}"
                    )))
                }
            }
        }
    }

    /// Runs one query, honoring the server's shedding contract: on an
    /// `overloaded` error, sleeps the server-provided `retry_after_ms` and
    /// retries, up to `max_retries` times. Every other outcome is returned
    /// as-is.
    pub fn query_with_backoff(
        &mut self,
        sql: &str,
        max_retries: u32,
    ) -> Result<QueryReply, ClientError> {
        let mut attempt = 0;
        loop {
            match self.query(sql) {
                Err(ClientError::Engine(err)) if err.kind == "overloaded" => {
                    if attempt >= max_retries {
                        return Err(ClientError::Engine(err));
                    }
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(err.retry_after_ms.unwrap_or(50)));
                }
                other => return other,
            }
        }
    }
}

fn field_u64(record: &proteus_algebra::Record, name: &str) -> u64 {
    match record.get(name) {
        Some(Value::Int(i)) => u64::try_from(*i).unwrap_or(0),
        _ => 0,
    }
}

fn parse_metrics(record: &proteus_algebra::Record) -> WireMetrics {
    WireMetrics {
        rows: field_u64(record, "rows"),
        tuples_scanned: field_u64(record, "tuples_scanned"),
        morsels: field_u64(record, "morsels"),
        threads_used: field_u64(record, "threads_used"),
        workers_touched: field_u64(record, "workers_touched"),
        queue_wait_us: field_u64(record, "queue_wait_us"),
        sched_steals: field_u64(record, "sched_steals"),
        compile_us: field_u64(record, "compile_us"),
        exec_us: field_u64(record, "exec_us"),
    }
}

fn parse_error(record: &proteus_algebra::Record) -> WireError {
    let opt_u64 = |name: &str| match record.get(name) {
        Some(Value::Int(i)) => u64::try_from(*i).ok(),
        _ => None,
    };
    WireError {
        kind: record
            .get("kind")
            .and_then(|v| v.as_str().ok())
            .unwrap_or("unknown")
            .to_string(),
        message: record
            .get("message")
            .and_then(|v| v.as_str().ok())
            .unwrap_or_default()
            .to_string(),
        retry_after_ms: opt_u64("retry_after_ms"),
        queued: opt_u64("queued"),
        capacity: opt_u64("capacity"),
        timeout_ms: opt_u64("timeout_ms"),
        site: record
            .get("site")
            .and_then(|v| v.as_str().ok())
            .map(str::to_string),
        used_bytes: opt_u64("used_bytes"),
        budget_bytes: opt_u64("budget_bytes"),
    }
}
