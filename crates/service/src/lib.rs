//! # proteus-service
//!
//! The network front door of the engine: a **std-only** TCP query service
//! plus a matching client (no external dependencies — the build environment
//! is offline, so the whole stack is `std::net` + the workspace's own JSON
//! parser/renderer).
//!
//! The service exists for the concurrency layer underneath it: every
//! connection's queries run on the engine's shared worker-pool scheduler
//! (`proteus_core::exec::scheduler`), so N clients share one pool with
//! admission control, overload shedding and per-query fault isolation —
//! a panicking, cancelled, budget-tripped or timed-out query on one
//! connection never perturbs another connection's results.
//!
//! ## Wire protocol
//!
//! Length-prefixed JSON frames, both directions: a 4-byte big-endian byte
//! length followed by exactly that many bytes of UTF-8 JSON (one object per
//! frame, 64 MiB cap). See [`wire`] for the frame grammar:
//!
//! * client → server: `{"type":"query","sql":…}` and `{"type":"cancel"}`
//! * server → client: `{"type":"row","row":…}` per result row, then one
//!   `{"type":"metrics",…}` on success or one `{"type":"error","kind":…}`
//!   mapping every [`proteus_core::EngineError`] variant — `overloaded`
//!   carries `retry_after_ms`, which [`Client::query_with_backoff`] honors.
//!
//! Closing the client connection mid-query **cancels the query**: the
//! server's per-connection reader observes EOF and fires the in-flight
//! query's cancellation token, so an abandoned query stops at its next
//! morsel checkpoint instead of running to completion for nobody.
//!
//! [`Server::shutdown`] is the graceful drain: stop accepting, drain the
//! engine's scheduler (in-flight queries finish or are cancelled within a
//! grace period), and join every connection thread — responses already in
//! flight are written in full before their connections close.
//!
//! The chaos harness reaches this tier through the `service.read` and
//! `service.write` fault sites (same `PROTEUS_FAULTS` syntax as the engine
//! sites).

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, QueryReply, WireError, WireMetrics};
pub use server::Server;
