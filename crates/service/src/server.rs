//! The TCP query service.
//!
//! Connection model: **two threads per connection**.
//!
//! * The *reader* blocks on the socket. A `query` frame is forwarded to the
//!   worker; a `cancel` frame (or EOF / a read error — i.e. the client went
//!   away) fires the in-flight query's cancellation token, so an abandoned
//!   query stops at its next morsel checkpoint.
//! * The *worker* executes queries one at a time on the shared engine
//!   (scheduler admission included) and writes every response frame: `row`
//!   frames, then one `metrics` or `error` trailer. Because the worker owns
//!   the write half exclusively, response frames never interleave.
//!
//! [`Server::shutdown`] drains gracefully: stop accepting, drain the
//! engine's scheduler (in-flight queries finish or are cancelled within the
//! grace period and their — possibly `cancelled` — responses are written in
//! full), join the workers, then close the sockets and join the readers.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use proteus_core::exec::DrainReport;
use proteus_core::{CancellationToken, QueryEngine};

use crate::wire;

/// A client→server frame, decoded by the reader thread.
enum ConnEvent {
    Query(String),
    /// The peer disconnected (EOF or read error): stop the worker after the
    /// in-flight query (whose token the reader already fired) unwinds.
    Closed,
}

struct ConnShared {
    /// The in-flight query's cancellation token, when one is running.
    cancel: Mutex<Option<CancellationToken>>,
}

impl ConnShared {
    fn fire_cancel(&self) {
        if let Some(token) = self
            .cancel
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            token.cancel();
        }
    }
}

fn reader_main(stream: TcpStream, shared: Arc<ConnShared>, events: Sender<ConnEvent>) {
    let mut stream = stream;
    // The loop exits on clean EOF, a read error (client went away), or a
    // protocol violation (unparseable frame / unknown type).
    while let Ok(Some(bytes)) = wire::read_frame(&mut stream) {
        let Ok(frame) = wire::value_from_json(&bytes) else {
            break;
        };
        let kind = frame
            .as_record()
            .ok()
            .and_then(|r| r.get("type"))
            .and_then(|v| v.as_str().ok().map(str::to_string))
            .unwrap_or_default();
        match kind.as_str() {
            "query" => {
                let sql = frame
                    .as_record()
                    .ok()
                    .and_then(|r| r.get("sql"))
                    .and_then(|v| v.as_str().ok().map(str::to_string))
                    .unwrap_or_default();
                if events.send(ConnEvent::Query(sql)).is_err() {
                    break;
                }
            }
            "cancel" => shared.fire_cancel(),
            _ => break,
        }
    }
    shared.fire_cancel();
    let _ = events.send(ConnEvent::Closed);
}

fn worker_main(
    stream: TcpStream,
    shared: Arc<ConnShared>,
    events: Receiver<ConnEvent>,
    engine: Arc<QueryEngine>,
    stop: Arc<AtomicBool>,
) {
    let mut out = stream;
    loop {
        // Poll the stop flag between queries so shutdown can join workers
        // without racing their in-progress writes.
        let event = match events.recv_timeout(Duration::from_millis(50)) {
            Ok(event) => event,
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let sql = match event {
            ConnEvent::Query(sql) => sql,
            ConnEvent::Closed => break,
        };
        let token = CancellationToken::new();
        *shared.cancel.lock().unwrap_or_else(PoisonError::into_inner) = Some(token.clone());
        let result = engine.sql_with_cancellation(&sql, Some(token));
        *shared.cancel.lock().unwrap_or_else(PoisonError::into_inner) = None;
        let write = match result {
            Ok(result) => {
                let rows = result.flattened_rows();
                let count = rows.len() as u64;
                rows.iter()
                    .try_for_each(|row| wire::write_frame(&mut out, &wire::row_frame(row)))
                    .and_then(|()| {
                        wire::write_frame(&mut out, &wire::metrics_frame(&result.metrics, count))
                    })
            }
            Err(err) => wire::write_frame(&mut out, &wire::error_frame(&err)),
        };
        if write.is_err() {
            // The socket is gone (or an injected `service.write` fault
            // fired): nothing more can reach this client.
            break;
        }
    }
    let _ = out.flush();
    // Close the socket for real so a client blocked on a reply sees EOF
    // instead of hanging — the write half dying mid-reply must surface.
    let _ = out.shutdown(std::net::Shutdown::Both);
}

struct Connection {
    stream: TcpStream,
    reader: JoinHandle<()>,
    worker: JoinHandle<()>,
}

struct ServerShared {
    engine: Arc<QueryEngine>,
    stop: Arc<AtomicBool>,
    conns: Mutex<Vec<Connection>>,
}

/// The TCP front door: accepts connections and runs their queries on a
/// shared [`QueryEngine`] (one engine, one scheduler, many clients).
pub struct Server {
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections.
    pub fn start(engine: Arc<QueryEngine>, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking accept + stop-flag polling: std has no way to unblock
        // a blocking accept, and the 5 ms poll only runs while idle.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            engine,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("proteus-accept".to_string())
            .spawn(move || accept_main(listener, accept_shared))?;
        Ok(Server {
            shared,
            accept: Some(accept),
            local_addr,
        })
    }

    /// The bound address (for clients, when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, drain the engine's scheduler
    /// (in-flight queries finish or are cancelled within `grace` and their
    /// responses are written in full), then close every connection.
    pub fn shutdown(mut self, grace: Duration) -> DrainReport {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let report = self.shared.engine.drain(grace);
        let conns = std::mem::take(
            &mut *self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        // Join workers FIRST: each finishes writing its in-flight response
        // (the drain already failed or completed the query behind it), so
        // no response is cut off by the socket close below.
        for conn in &conns {
            let _ = conn.stream.shutdown(std::net::Shutdown::Read);
        }
        for conn in conns {
            let _ = conn.worker.join();
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            let _ = conn.reader.join();
        }
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort stop when the caller skipped `shutdown`.
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn accept_main(listener: TcpListener, shared: Arc<ServerShared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if let Err(_e) = spawn_connection(stream, &shared) {
                    // Thread spawn failure: drop the connection; the client
                    // sees a close and may retry.
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn spawn_connection(stream: TcpStream, shared: &Arc<ServerShared>) -> std::io::Result<()> {
    let conn_shared = Arc::new(ConnShared {
        cancel: Mutex::new(None),
    });
    let (tx, rx) = std::sync::mpsc::channel();
    let read_stream = stream.try_clone()?;
    let write_stream = stream.try_clone()?;
    let reader_shared = conn_shared.clone();
    let reader = std::thread::Builder::new()
        .name("proteus-conn-read".to_string())
        .spawn(move || reader_main(read_stream, reader_shared, tx))?;
    let engine = shared.engine.clone();
    let stop = shared.stop.clone();
    let worker = std::thread::Builder::new()
        .name("proteus-conn-work".to_string())
        .spawn(move || worker_main(write_stream, conn_shared, rx, engine, stop))?;
    shared
        .conns
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(Connection {
            stream,
            reader,
            worker,
        });
    Ok(())
}
