//! Framing and JSON rendering of the wire protocol.
//!
//! Every frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON — one object per frame. Both halves go through the chaos
//! sites `service.read` / `service.write`, so the fault harness can fail
//! either direction of the socket with the usual `PROTEUS_FAULTS` syntax.
//!
//! Values cross the wire as plain JSON with two conventions:
//!
//! * dates (days since 1970-01-01) render as `{"$date": n}` so the client
//!   reconstructs [`Value::Date`] instead of a bare integer;
//! * non-finite floats (`NaN`, `±∞`) render as `null` — JSON has no
//!   representation for them, and a lossy null beats an unparseable frame.
//!
//! Everything else round-trips exactly: integers stay integers, finite
//! floats use Rust's shortest-round-trip rendering (with a forced `.0` for
//! integral values so they parse back as floats), and record field order is
//! preserved.

use std::io::{Read, Write};

use proteus_algebra::{Record, Value};
use proteus_core::{EngineError, ExecutionMetrics};

/// Hard cap on a single frame, both directions: a length prefix beyond it
/// is treated as a protocol error, not an allocation request.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

fn injected(site: &str, detail: String) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {site}: {detail}"))
}

/// Writes one frame. Chaos site: `service.write`.
pub fn write_frame(out: &mut impl Write, json: &str) -> std::io::Result<()> {
    if proteus_plugins::fault::armed() {
        if let Err(detail) = proteus_plugins::fault::check("service.write") {
            return Err(injected("service.write", detail));
        }
    }
    let bytes = json.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::other(format!(
            "frame of {} bytes exceeds the {} byte cap",
            bytes.len(),
            MAX_FRAME_BYTES
        )));
    }
    out.write_all(&(bytes.len() as u32).to_be_bytes())?;
    out.write_all(bytes)?;
    out.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed the connection). Chaos site: `service.read`.
pub fn read_frame(input: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    if proteus_plugins::fault::armed() {
        if let Err(detail) = proteus_plugins::fault::check("service.read") {
            return Err(injected("service.read", detail));
        }
    }
    let mut len = [0u8; 4];
    // Hand-rolled first-byte read so EOF *between* frames is a clean close
    // while EOF *inside* a frame stays an error.
    let mut filled = 0;
    while filled < len.len() {
        match input.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::other(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES} byte cap"
        )));
    }
    let mut body = vec![0u8; len];
    input.read_exact(&mut body)?;
    Ok(Some(body))
}

// -- JSON rendering ---------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a [`Value`] as wire JSON (see the module docs for the date and
/// non-finite-float conventions).
pub fn value_to_json(value: &Value) -> String {
    let mut out = String::new();
    render_value(value, &mut out);
    out
}

fn render_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Date(d) => out.push_str(&format!("{{\"$date\": {d}}}")),
        Value::Float(f) if !f.is_finite() => out.push_str("null"),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_value(item, out);
            }
            out.push(']');
        }
        Value::Record(record) => {
            out.push('{');
            for (i, (name, v)) in record.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                escape_into(name, out);
                out.push_str(": ");
                render_value(v, out);
            }
            out.push('}');
        }
    }
}

/// Parses wire JSON back into a [`Value`], reversing the `$date`
/// convention.
pub fn value_from_json(bytes: &[u8]) -> Result<Value, String> {
    let value = proteus_plugins::json::parse_json_value(bytes).map_err(|e| e.to_string())?;
    Ok(revive(value))
}

fn revive(value: Value) -> Value {
    match value {
        Value::Record(record) => {
            if record.len() == 1 {
                if let Some(("$date", Value::Int(days))) = record.get_index(0) {
                    return Value::Date(*days);
                }
            }
            let mut out = Record::empty();
            for (name, v) in record.iter() {
                out.set(name.to_string(), revive(v.clone()));
            }
            Value::Record(out)
        }
        Value::List(items) => Value::List(items.into_iter().map(revive).collect()),
        other => other,
    }
}

// -- frame builders ----------------------------------------------------------

/// The client's query submission frame.
pub fn query_frame(sql: &str) -> String {
    let mut out = String::from("{\"type\": \"query\", \"sql\": ");
    escape_into(sql, &mut out);
    out.push('}');
    out
}

/// The client's cancel frame (cancels the connection's in-flight query).
pub fn cancel_frame() -> String {
    "{\"type\": \"cancel\"}".to_string()
}

/// One result row.
pub fn row_frame(row: &Value) -> String {
    let mut out = String::from("{\"type\": \"row\", \"row\": ");
    render_value(row, &mut out);
    out.push('}');
    out
}

/// The success trailer: every counter of [`ExecutionMetrics`] plus timings
/// in microseconds.
pub fn metrics_frame(metrics: &ExecutionMetrics, rows: u64) -> String {
    let m = metrics;
    format!(
        "{{\"type\": \"metrics\", \"rows\": {rows}, \"tuples_scanned\": {}, \"tuples_output\": {}, \
         \"intermediate_tuples\": {}, \"intermediate_bytes\": {}, \"predicate_evals\": {}, \
         \"kernel_rows\": {}, \"fallback_rows\": {}, \"agg_kernel_rows\": {}, \
         \"agg_fallback_rows\": {}, \"join_kernel_rows\": {}, \"join_fallback_rows\": {}, \
         \"simd_rows\": {}, \"hash_probes\": {}, \"cached_values\": {}, \"morsels\": {}, \
         \"morsels_skipped\": {}, \"morsels_short_circuited\": {}, \"index_rows\": {}, \
         \"binding_allocs\": {}, \"batch_grows\": {}, \"bad_rows\": {}, \"threads_used\": {}, \
         \"workers_touched\": {}, \"queue_wait_us\": {}, \"sched_steals\": {}, \
         \"compile_us\": {}, \"exec_us\": {}}}",
        m.tuples_scanned,
        m.tuples_output,
        m.intermediate_tuples,
        m.intermediate_bytes,
        m.predicate_evals,
        m.kernel_rows,
        m.fallback_rows,
        m.agg_kernel_rows,
        m.agg_fallback_rows,
        m.join_kernel_rows,
        m.join_fallback_rows,
        m.simd_rows,
        m.hash_probes,
        m.cached_values,
        m.morsels,
        m.morsels_skipped,
        m.morsels_short_circuited,
        m.index_rows,
        m.binding_allocs,
        m.batch_grows,
        m.bad_rows,
        m.threads_used,
        m.workers_touched,
        m.queue_wait_us,
        m.sched_steals,
        m.compile_time.as_micros(),
        m.exec_time.as_micros(),
    )
}

/// Maps every [`EngineError`] variant onto a structured error frame: a
/// stable `kind` tag, the display message, and the variant's own fields.
pub fn error_frame(err: &EngineError) -> String {
    let mut out = String::from("{\"type\": \"error\", \"kind\": ");
    let (kind, extra) = match err {
        EngineError::Algebra(_) => ("algebra", String::new()),
        EngineError::Plugin(_) => ("plugin", String::new()),
        EngineError::Storage(_) => ("storage", String::new()),
        EngineError::UnknownDataset(_) => ("unknown_dataset", String::new()),
        EngineError::Unsupported(_) => ("unsupported", String::new()),
        EngineError::Cancelled => ("cancelled", String::new()),
        EngineError::DeadlineExceeded { timeout_ms, .. } => (
            "deadline_exceeded",
            format!(", \"timeout_ms\": {timeout_ms}"),
        ),
        EngineError::ResourceExhausted {
            site,
            used_bytes,
            budget_bytes,
        } => {
            let mut extra = String::from(", \"site\": ");
            escape_into(site, &mut extra);
            extra.push_str(&format!(
                ", \"used_bytes\": {used_bytes}, \"budget_bytes\": {budget_bytes}"
            ));
            ("resource_exhausted", extra)
        }
        EngineError::WorkerPanic { .. } => ("worker_panic", String::new()),
        EngineError::Overloaded {
            queued,
            capacity,
            retry_after_ms,
        } => (
            "overloaded",
            format!(
                ", \"queued\": {queued}, \"capacity\": {capacity}, \
                 \"retry_after_ms\": {retry_after_ms}"
            ),
        ),
        EngineError::Internal { site, .. } => {
            let mut extra = String::from(", \"site\": ");
            escape_into(site, &mut extra);
            ("internal", extra)
        }
    };
    escape_into(kind, &mut out);
    out.push_str(", \"message\": ");
    escape_into(&err.to_string(), &mut out);
    out.push_str(&extra);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\": \"cancel\"}").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let frame = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(frame, b"{\"type\": \"cancel\"}");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{}").unwrap();
        buf.truncate(5);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let bytes = u32::MAX.to_be_bytes().to_vec();
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn values_round_trip_including_dates_and_escapes() {
        let value = Value::record(vec![
            ("i", Value::Int(42)),
            ("f", Value::Float(2.5)),
            ("whole", Value::Float(3.0)),
            ("s", Value::Str("a \"b\"\n\\c".into())),
            ("d", Value::Date(19000)),
            ("n", Value::Null),
            (
                "l",
                Value::List(vec![Value::Bool(true), Value::Bool(false)]),
            ),
        ]);
        let json = value_to_json(&value);
        let back = value_from_json(json.as_bytes()).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(value_to_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(value_to_json(&Value::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn error_frames_carry_variant_fields() {
        let frame = error_frame(&EngineError::Overloaded {
            queued: 3,
            capacity: 8,
            retry_after_ms: 25,
        });
        let value = value_from_json(frame.as_bytes()).unwrap();
        let rec = value.as_record().unwrap();
        assert_eq!(rec.get("kind"), Some(&Value::Str("overloaded".into())));
        assert_eq!(rec.get("retry_after_ms"), Some(&Value::Int(25)));
        assert_eq!(rec.get("queued"), Some(&Value::Int(3)));
        assert_eq!(rec.get("capacity"), Some(&Value::Int(8)));
    }
}
