//! The adaptive cache store (§6, "Adapting Storage to Workload").
//!
//! Proteus populates binary caches as a side-effect of query execution.
//! Every cache holds the materialized result of an algebraic expression
//! (field projections, arithmetic expressions, record constructions) over one
//! source dataset, stored as packed binary columns. Caches are keyed by the
//! signature of the plan subtree that produced them so the cache-matching
//! pass can splice them into later plans.
//!
//! Beyond the paper's single-session store, this store is a production
//! subsystem:
//!
//! * **Global memory budget with cost/benefit eviction.** Every entry's full
//!   footprint (columns, string pools, the zone maps the cache plug-in will
//!   build, OIDs) is accounted against the arena budget. When an insert
//!   would exceed it, the entry with the lowest benefit density —
//!   `(build_cost × (1 + hits)) / bytes` — is evicted first, so cheap-to-
//!   rebuild and cold entries go before hot, expensive ones. `build_cost`
//!   is stamped by the builder from the optimizer's cost model; hits are
//!   recorded live by cache matching.
//! * **Disk spill.** With a spill directory configured, an evicted entry
//!   that had at least one hit is written to disk (checksummed, versioned —
//!   see [`crate::persist`]) instead of discarded; a later signature lookup
//!   that misses in memory reloads it transparently, heat intact.
//! * **Concurrent readers during rebuild.** Entries are handed out as
//!   [`Arc<CacheEntry>`]: replacing or invalidating an entry swaps the map
//!   slot while in-flight queries keep reading the handle they hold. Reads
//!   outstanding at swap time are counted as `stale_reads`.
//! * **Atomic invalidation.** [`CacheStore::invalidate_dataset`] drops the
//!   entry, its zone-map sidecar, and any spilled file in one critical
//!   section, and bumps the dataset's revision so an in-flight background
//!   build for the old data can never register a stale cache
//!   ([`CacheStore::insert_if_current`]).

use std::any::Any;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::column::ColumnData;
use crate::error::{Result, StorageError};
use crate::memory::MemoryManager;
use crate::persist;

/// The format of the dataset a cache was derived from. Ordering encodes the
/// rebuild-cost bias: `Json > Csv > Binary` in terms of re-access cost, so
/// binary-derived caches default to the lowest build cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SourceFormat {
    /// Derived from relational binary data (cheap to rebuild).
    Binary,
    /// Derived from a CSV file.
    Csv,
    /// Derived from a JSON file (most expensive to rebuild).
    Json,
}

impl SourceFormat {
    /// Relative re-access cost weight used when no build cost was stamped.
    pub fn cost_weight(&self) -> u64 {
        match self {
            SourceFormat::Binary => 1,
            SourceFormat::Csv => 4,
            SourceFormat::Json => 16,
        }
    }
}

/// Degree of eagerness used when the cache was built (§6): a cache may hold
/// fully converted binary values, just the byte positions of the values in
/// the original file, or only the OIDs of qualifying entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEagerness {
    /// Fully converted binary values.
    Values,
    /// Byte positions of the values in the source file.
    Positions,
    /// Only the OIDs of qualifying objects.
    OidsOnly,
}

/// Rows per zone-map entry. Must equal the plug-in layer's `ZONE_ROWS`
/// (compile-asserted there): the store accounts each entry's zone-map
/// footprint against the budget before the cache plug-in builds the maps.
pub const CACHE_ZONE_ROWS: usize = 1024;

/// Accounted bytes per zone-map entry (rows + null count + min/max + flags,
/// rounded up to cover per-column aggregation state).
const ZONE_ENTRY_FOOTPRINT: usize = 32;

/// Accounted heap-header overhead per cached string (`String` header plus
/// allocator slack) on top of the byte length `ColumnData::byte_size`
/// already counts.
const STRING_POOL_OVERHEAD: usize = 24;

/// One cached expression result.
#[derive(Debug)]
pub struct CacheEntry {
    /// Unique cache name.
    pub name: String,
    /// Signature of the plan subtree whose output this cache holds; used as
    /// the search key during cache matching.
    pub plan_signature: String,
    /// Human-readable rendering of the cached expressions.
    pub expressions: Vec<String>,
    /// Dataset the cache was derived from.
    pub source_dataset: String,
    /// Format of that dataset (drives the default build cost).
    pub source_format: SourceFormat,
    /// How eagerly values were materialized.
    pub eagerness: CacheEagerness,
    /// The cached columns, one per expression, aligned by OID order.
    pub columns: Vec<(String, ColumnData)>,
    /// OIDs of the source entries each row corresponds to.
    pub oids: Vec<u64>,
    /// Total footprint in bytes (accounted against the arena budget; set on
    /// insert from [`CacheEntry::footprint`]).
    pub byte_size: usize,
    /// Cost units to rebuild this entry from its source, in the optimizer's
    /// cost-model units (stamped by the cache builder; a zero value is
    /// defaulted from the source format's weight on insert).
    pub build_cost: u64,
    /// Cache-matching hits against this entry (live input to the eviction
    /// score; survives spill/reload).
    hit_count: AtomicU64,
    /// Logical timestamp of the last use (eviction tie-break).
    last_used: AtomicU64,
}

impl Clone for CacheEntry {
    fn clone(&self) -> CacheEntry {
        CacheEntry {
            name: self.name.clone(),
            plan_signature: self.plan_signature.clone(),
            expressions: self.expressions.clone(),
            source_dataset: self.source_dataset.clone(),
            source_format: self.source_format,
            eagerness: self.eagerness,
            columns: self.columns.clone(),
            oids: self.oids.clone(),
            byte_size: self.byte_size,
            build_cost: self.build_cost,
            hit_count: AtomicU64::new(self.hit_count.load(Ordering::Relaxed)),
            last_used: AtomicU64::new(self.last_used.load(Ordering::Relaxed)),
        }
    }
}

impl CacheEntry {
    /// Number of cached rows.
    pub fn row_count(&self) -> usize {
        self.oids.len()
    }

    /// Looks up a cached column by its expression alias.
    pub fn column(&self, name: &str) -> Option<&ColumnData> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Cache-matching hits recorded against this entry.
    pub fn hits(&self) -> u64 {
        self.hit_count.load(Ordering::Relaxed)
    }

    /// Seeds the hit counter (persistence restore; tests building fixed hit
    /// histories).
    pub fn set_hits(&self, hits: u64) {
        self.hit_count.store(hits, Ordering::Relaxed);
    }

    /// Full memory footprint accounted against the budget: column payloads,
    /// string-pool overhead, the zone maps the cache plug-in derives (one
    /// entry per [`CACHE_ZONE_ROWS`] rows per column), OIDs, and the entry's
    /// own strings.
    pub fn footprint(&self) -> usize {
        let columns: usize = self
            .columns
            .iter()
            .map(|(name, col)| {
                let pool = match col {
                    ColumnData::Str(v) => v.len() * STRING_POOL_OVERHEAD,
                    _ => 0,
                };
                name.len() + col.byte_size() + pool
            })
            .sum();
        let zone_entries = self.oids.len().div_ceil(CACHE_ZONE_ROWS);
        let zone_maps = self.columns.len() * zone_entries * ZONE_ENTRY_FOOTPRINT;
        columns
            + zone_maps
            + self.oids.len() * 8
            + self.name.len()
            + self.plan_signature.len()
            + self.expressions.iter().map(|e| e.len()).sum::<usize>()
    }

    /// The eviction score: benefit density in cost units per KiB. Entries
    /// that are expensive to rebuild and frequently hit score high; big,
    /// cold, cheap entries score low and are evicted first.
    fn score(&self) -> u128 {
        (self.build_cost as u128)
            .saturating_mul(1 + self.hits() as u128)
            .saturating_mul(1024)
            / self.byte_size.max(1) as u128
    }
}

/// Aggregate statistics of the cache store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of live in-memory cache entries.
    pub entries: usize,
    /// Total bytes pinned (always ≤ the arena budget).
    pub bytes: usize,
    /// Successful cache-matching lookups (including spill reloads).
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Entries evicted so far.
    pub evictions: u64,
    /// Bytes written to the spill directory by hot evictions.
    pub spilled_bytes: u64,
    /// Cache entries registered by completed background builds.
    pub background_builds: u64,
    /// Reads that were still outstanding when their entry was replaced or
    /// invalidated (the readers finish on the old handle).
    pub stale_reads: u64,
}

/// Opaque per-entry sidecar (the plug-in layer parks derived zone maps here
/// so they are dropped atomically with the entry).
pub type CacheSidecar = Arc<dyn Any + Send + Sync>;

/// Fault probe injected by the engine (wired to the chaos harness's
/// `cache.spill` / `cache.load` sites); `Err` makes the store skip the disk
/// operation gracefully.
pub type FaultProbe = Arc<dyn Fn(&str) -> std::result::Result<(), String> + Send + Sync>;

/// A spilled (evicted-but-hot) entry's on-disk record.
struct SpillRecord {
    path: PathBuf,
    plan_signature: String,
    source_dataset: String,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    spilled_bytes: AtomicU64,
    background_builds: AtomicU64,
    stale_reads: AtomicU64,
}

#[derive(Default)]
struct StoreInner {
    entries: HashMap<String, Arc<CacheEntry>>,
    sidecars: HashMap<String, CacheSidecar>,
    spilled: HashMap<String, SpillRecord>,
    /// Bumped by every `invalidate_dataset`; background builds capture the
    /// revision at start and refuse to register against a newer one.
    revisions: HashMap<String, u64>,
    spill_dir: Option<PathBuf>,
}

/// The caching manager: stores, matches, evicts, spills and restores caches.
#[derive(Clone)]
pub struct CacheStore {
    memory: MemoryManager,
    inner: Arc<RwLock<StoreInner>>,
    counters: Arc<Counters>,
    clock: Arc<AtomicU64>,
    probe: Arc<RwLock<Option<FaultProbe>>>,
}

impl CacheStore {
    /// Creates a cache store accounting against the given memory manager.
    pub fn new(memory: MemoryManager) -> Self {
        CacheStore {
            memory,
            inner: Arc::new(RwLock::new(StoreInner::default())),
            counters: Arc::new(Counters::default()),
            clock: Arc::new(AtomicU64::new(1)),
            probe: Arc::new(RwLock::new(None)),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Installs the fault probe consulted before spill/load disk operations
    /// (the engine wires this to the chaos harness).
    pub fn set_fault_probe(&self, probe: FaultProbe) {
        *self.probe.write() = Some(probe);
    }

    pub(crate) fn probe(&self, site: &str) -> std::result::Result<(), String> {
        match self.probe.read().clone() {
            Some(probe) => probe(site),
            None => Ok(()),
        }
    }

    /// Enables disk spill: evicted entries with at least one hit are written
    /// under `dir` and reloaded transparently on a later signature lookup.
    pub fn set_spill_dir(&self, dir: impl Into<PathBuf>) -> Result<()> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        self.inner.write().spill_dir = Some(dir);
        Ok(())
    }

    /// Records one cache-matching hit against `name` (live input to the
    /// eviction score; called by the optimizer's cache matching and by
    /// per-column cache reuse at compile time).
    pub fn record_hit(&self, name: &str) {
        let tick = self.tick();
        if let Some(entry) = self.inner.read().entries.get(name) {
            entry.hit_count.fetch_add(1, Ordering::Relaxed);
            entry.last_used.store(tick, Ordering::Relaxed);
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current revision of a dataset (bumped by every invalidation). A
    /// background build captures this before scanning and passes it to
    /// [`CacheStore::insert_if_current`].
    pub fn dataset_revision(&self, dataset: &str) -> u64 {
        self.inner
            .read()
            .revisions
            .get(dataset)
            .copied()
            .unwrap_or(0)
    }

    /// Inserts a cache entry, evicting lowest-score entries if the arena
    /// budget requires it. Returns an error only if the entry cannot fit
    /// even after evicting everything else.
    pub fn insert(&self, entry: CacheEntry) -> Result<()> {
        self.insert_inner(entry, None).map(|_| ())
    }

    /// Inserts only if `dataset` is still at `revision` (captured via
    /// [`CacheStore::dataset_revision`] before the build started). Returns
    /// `Ok(false)` — nothing registered, memory released — when an
    /// invalidation raced the build.
    pub fn insert_if_current(&self, entry: CacheEntry, revision: u64) -> Result<bool> {
        self.insert_inner(entry, Some(revision))
    }

    fn insert_inner(&self, mut entry: CacheEntry, revision: Option<u64>) -> Result<bool> {
        entry.byte_size = entry.footprint();
        if entry.build_cost == 0 {
            // No stamped cost: default from the format bias so the
            // pre-cost-model insert paths still order sensibly.
            entry.build_cost = (entry.row_count() as u64 + 1)
                .saturating_mul(entry.columns.len() as u64 + 1)
                .saturating_mul(entry.source_format.cost_weight());
        }
        entry.last_used.store(self.tick(), Ordering::Relaxed);

        // Make room: evict until the reservation succeeds. The replaced
        // entry (same name) is itself a candidate victim, which is fine —
        // either way its bytes are released before the new entry lands.
        loop {
            match self.memory.reserve_arena(entry.byte_size) {
                Ok(()) => break,
                Err(_) => {
                    if !self.evict_one() {
                        return Err(StorageError::OutOfMemory(format!(
                            "cache {} ({} B) cannot fit in the arena",
                            entry.name, entry.byte_size
                        )));
                    }
                }
            }
        }

        let mut inner = self.inner.write();
        if let Some(required) = revision {
            let current = inner
                .revisions
                .get(&entry.source_dataset)
                .copied()
                .unwrap_or(0);
            if current != required {
                drop(inner);
                self.memory.release_arena(entry.byte_size);
                return Ok(false);
            }
        }
        let name = entry.name.clone();
        // A replaced entry's sidecar and spill record describe the old data:
        // drop them in the same critical section.
        inner.sidecars.remove(&name);
        if let Some(record) = inner.spilled.remove(&name) {
            let _ = std::fs::remove_file(&record.path);
        }
        if let Some(old) = inner.entries.insert(name, Arc::new(entry)) {
            self.retire(&old);
            self.memory.release_arena(old.byte_size);
        }
        Ok(true)
    }

    /// Counts readers left holding a removed/replaced entry.
    fn retire(&self, old: &Arc<CacheEntry>) {
        let outstanding = Arc::strong_count(old).saturating_sub(1) as u64;
        if outstanding > 0 {
            self.counters
                .stale_reads
                .fetch_add(outstanding, Ordering::Relaxed);
        }
    }

    /// Evicts the entry with the lowest cost/benefit score, spilling it to
    /// disk first when it is hot and a spill directory is configured.
    /// Returns false if the store is empty.
    fn evict_one(&self) -> bool {
        let mut inner = self.inner.write();
        // Benefit density (build_cost × (1 + hits)) / bytes, tie-broken by
        // LRU timestamp then name: big, cold, cheap-to-rebuild entries go
        // first; hot expensive ones survive longest. The full order is
        // deterministic given the entries' hit histories.
        let victim = inner
            .entries
            .values()
            .min_by_key(|e| {
                (
                    e.score(),
                    e.last_used.load(Ordering::Relaxed),
                    e.name.clone(),
                )
            })
            .map(|e| e.name.clone());
        let Some(name) = victim else {
            return false;
        };
        let Some(entry) = inner.entries.remove(&name) else {
            return false;
        };
        inner.sidecars.remove(&name);
        self.retire(&entry);
        self.memory.release_arena(entry.byte_size);
        self.counters.evictions.fetch_add(1, Ordering::Relaxed);

        // Evicted-but-hot: keep it on disk instead of discarding the build.
        if entry.hits() > 0 {
            if let Some(dir) = inner.spill_dir.clone() {
                if self.probe("cache.spill").is_ok() {
                    let path = dir.join(persist::entry_file_name(&entry.name));
                    if persist::write_entry(&entry, &path).is_ok() {
                        self.counters
                            .spilled_bytes
                            .fetch_add(entry.byte_size as u64, Ordering::Relaxed);
                        inner.spilled.insert(
                            entry.name.clone(),
                            SpillRecord {
                                path,
                                plan_signature: entry.plan_signature.clone(),
                                source_dataset: entry.source_dataset.clone(),
                            },
                        );
                    }
                }
            }
        }
        true
    }

    /// Looks a cache up by the signature of the plan subtree it replaces.
    /// A hit refreshes the entry's LRU timestamp and hit count; a miss
    /// falls through to the spill directory before giving up.
    pub fn lookup_by_signature(&self, signature: &str) -> Option<Arc<CacheEntry>> {
        let tick = self.tick();
        {
            let inner = self.inner.read();
            if let Some(entry) = inner
                .entries
                .values()
                .find(|e| e.plan_signature == signature)
            {
                entry.last_used.store(tick, Ordering::Relaxed);
                entry.hit_count.fetch_add(1, Ordering::Relaxed);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry.clone());
            }
        }
        if let Some(entry) = self.load_spilled(signature) {
            return Some(entry);
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Reloads a spilled entry whose signature matches, re-admitting it
    /// under the budget (which may evict colder residents). Corrupt files
    /// and injected `cache.load` faults degrade to a clean miss.
    fn load_spilled(&self, signature: &str) -> Option<Arc<CacheEntry>> {
        let path = {
            let inner = self.inner.read();
            inner
                .spilled
                .values()
                .find(|r| r.plan_signature == signature)
                .map(|r| r.path.clone())
        }?;
        if self.probe("cache.load").is_err() {
            return None;
        }
        let entry = persist::read_entry(&path).ok()?;
        if entry.plan_signature != signature {
            return None;
        }
        let name = entry.name.clone();
        // The reload bumps the hit count like any other hit, so a reloaded
        // entry does not come back as the immediate next eviction victim.
        entry.hit_count.fetch_add(1, Ordering::Relaxed);
        if self.insert(entry).is_err() {
            return None;
        }
        let mut inner = self.inner.write();
        if let Some(record) = inner.spilled.remove(&name) {
            let _ = std::fs::remove_file(&record.path);
        }
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        inner.entries.get(&name).cloned()
    }

    /// Looks a cache up by name without touching hit/miss statistics.
    pub fn get(&self, name: &str) -> Option<Arc<CacheEntry>> {
        self.inner.read().entries.get(name).cloned()
    }

    /// All caches derived from a given dataset.
    pub fn caches_for_dataset(&self, dataset: &str) -> Vec<Arc<CacheEntry>> {
        self.inner
            .read()
            .entries
            .values()
            .filter(|e| e.source_dataset == dataset)
            .cloned()
            .collect()
    }

    /// Every live entry (persistence snapshots, diagnostics).
    pub fn entries_snapshot(&self) -> Vec<Arc<CacheEntry>> {
        self.inner.read().entries.values().cloned().collect()
    }

    /// Attaches an opaque sidecar (derived zone maps) to a live entry; it is
    /// dropped atomically with the entry on eviction/invalidation/replace.
    /// Returns false when the entry is no longer live.
    pub fn set_sidecar(&self, name: &str, sidecar: CacheSidecar) -> bool {
        let mut inner = self.inner.write();
        if !inner.entries.contains_key(name) {
            return false;
        }
        inner.sidecars.insert(name.to_string(), sidecar);
        true
    }

    /// The sidecar attached to a live entry, if any.
    pub fn sidecar(&self, name: &str) -> Option<CacheSidecar> {
        self.inner.read().sidecars.get(name).cloned()
    }

    /// Counts one completed background cache build (called by the engine's
    /// build task on successful registration).
    pub fn note_background_build(&self) {
        self.counters
            .background_builds
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every cache derived from `dataset` (the paper's reaction to
    /// data updates: "Proteus currently drops and rebuilds any affected
    /// parts of existing auxiliary structures"). Entries, their zone-map
    /// sidecars and their spilled files go in one critical section, and the
    /// dataset revision is bumped so racing background builds abort.
    pub fn invalidate_dataset(&self, dataset: &str) -> usize {
        let mut inner = self.inner.write();
        *inner.revisions.entry(dataset.to_string()).or_insert(0) += 1;
        let names: Vec<String> = inner
            .entries
            .values()
            .filter(|e| e.source_dataset == dataset)
            .map(|e| e.name.clone())
            .collect();
        for name in &names {
            if let Some(entry) = inner.entries.remove(name) {
                self.retire(&entry);
                self.memory.release_arena(entry.byte_size);
            }
            inner.sidecars.remove(name);
        }
        let spilled: Vec<String> = inner
            .spilled
            .iter()
            .filter(|(_, r)| r.source_dataset == dataset)
            .map(|(n, _)| n.clone())
            .collect();
        let mut dropped = names.len();
        for name in spilled {
            if let Some(record) = inner.spilled.remove(&name) {
                let _ = std::fs::remove_file(&record.path);
            }
            dropped += 1;
        }
        dropped
    }

    /// Removes every cache entry (and sidecar, and spilled file).
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        let entries: Vec<Arc<CacheEntry>> = inner.entries.drain().map(|(_, e)| e).collect();
        for entry in &entries {
            self.retire(entry);
            self.memory.release_arena(entry.byte_size);
        }
        inner.sidecars.clear();
        for (_, record) in inner.spilled.drain() {
            let _ = std::fs::remove_file(&record.path);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.read();
        CacheStats {
            entries: inner.entries.len(),
            bytes: inner.entries.values().map(|e| e.byte_size).sum(),
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            spilled_bytes: self.counters.spilled_bytes.load(Ordering::Relaxed),
            background_builds: self.counters.background_builds.load(Ordering::Relaxed),
            stale_reads: self.counters.stale_reads.load(Ordering::Relaxed),
        }
    }

    /// Names of all live caches (diagnostics / tests).
    pub fn names(&self) -> Vec<String> {
        self.inner.read().entries.keys().cloned().collect()
    }

    /// Names of spilled (on-disk, reloadable) caches.
    pub fn spilled_names(&self) -> Vec<String> {
        self.inner.read().spilled.keys().cloned().collect()
    }
}

/// Convenience constructor for cache entries.
pub fn make_entry(
    name: impl Into<String>,
    plan_signature: impl Into<String>,
    source_dataset: impl Into<String>,
    source_format: SourceFormat,
    columns: Vec<(String, ColumnData)>,
    oids: Vec<u64>,
) -> CacheEntry {
    CacheEntry {
        name: name.into(),
        plan_signature: plan_signature.into(),
        expressions: columns.iter().map(|(n, _)| n.clone()).collect(),
        source_dataset: source_dataset.into(),
        source_format,
        eagerness: CacheEagerness::Values,
        columns,
        oids,
        byte_size: 0,
        build_cost: 0,
        hit_count: AtomicU64::new(0),
        last_used: AtomicU64::new(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_entry(name: &str, format: SourceFormat, rows: usize) -> CacheEntry {
        make_entry(
            name,
            format!("sig-{name}"),
            "lineitem",
            format,
            vec![("x".to_string(), ColumnData::Int((0..rows as i64).collect()))],
            (0..rows as u64).collect(),
        )
    }

    #[test]
    fn insert_and_lookup_by_signature() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(int_entry("c1", SourceFormat::Json, 100))
            .unwrap();
        let hit = store.lookup_by_signature("sig-c1").unwrap();
        assert_eq!(hit.row_count(), 100);
        assert_eq!(hit.hits(), 1);
        assert!(store.lookup_by_signature("sig-unknown").is_none());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn byte_size_is_accounted() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(int_entry("c1", SourceFormat::Csv, 10))
            .unwrap();
        let entry = store.get("c1").unwrap();
        // The accounted size is the full footprint: 10 ints (80 B) + 10
        // oids (80 B) + one zone-map entry + the entry's own strings.
        assert_eq!(entry.byte_size, entry.footprint());
        assert_eq!(store.stats().bytes, entry.byte_size);
        assert!(entry.byte_size >= 160 + ZONE_ENTRY_FOOTPRINT);
    }

    #[test]
    fn string_pools_are_accounted() {
        let strings = ColumnData::Str(vec!["aa".into(), "bb".into()]);
        let raw = strings.byte_size();
        let entry = make_entry(
            "s",
            "sig-s",
            "d",
            SourceFormat::Csv,
            vec![("s".to_string(), strings)],
            vec![0, 1],
        );
        assert!(entry.footprint() >= raw + 2 * STRING_POOL_OVERHEAD);
    }

    #[test]
    fn eviction_prefers_binary_over_json() {
        // Budget fits roughly two entries (~220 B of footprint each).
        let store = CacheStore::new(MemoryManager::with_budget(500));
        store
            .insert(int_entry("json_cache", SourceFormat::Json, 10))
            .unwrap();
        store
            .insert(int_entry("bin_cache", SourceFormat::Binary, 10))
            .unwrap();
        // Touch the binary cache so it is the most recently used (and even
        // has a hit on its side).
        assert!(store.lookup_by_signature("sig-bin_cache").is_some());
        // Inserting a third entry forces an eviction; despite being LRU-cold
        // and hitless, the JSON cache must survive because its build cost
        // dominates the benefit score.
        store
            .insert(int_entry("csv_cache", SourceFormat::Csv, 10))
            .unwrap();
        let names = store.names();
        assert!(names.contains(&"json_cache".to_string()));
        assert!(!names.contains(&"bin_cache".to_string()));
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn hit_count_outweighs_format_bias() {
        let store = CacheStore::new(MemoryManager::with_budget(500));
        store
            .insert(int_entry("bin_hot", SourceFormat::Binary, 10))
            .unwrap();
        store
            .insert(int_entry("json_cold", SourceFormat::Json, 10))
            .unwrap();
        // 40 hits on the binary entry: benefit 22×41 > 352×1.
        for _ in 0..40 {
            assert!(store.lookup_by_signature("sig-bin_hot").is_some());
        }
        store
            .insert(int_entry("csv_new", SourceFormat::Csv, 10))
            .unwrap();
        let names = store.names();
        assert!(names.contains(&"bin_hot".to_string()));
        assert!(!names.contains(&"json_cold".to_string()));
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let store = CacheStore::new(MemoryManager::with_budget(100));
        let result = store.insert(int_entry("huge", SourceFormat::Json, 1000));
        assert!(matches!(result, Err(StorageError::OutOfMemory(_))));
    }

    #[test]
    fn reinsert_replaces_and_releases_memory() {
        let mm = MemoryManager::with_budget(10_000);
        let store = CacheStore::new(mm.clone());
        store
            .insert(int_entry("c", SourceFormat::Csv, 100))
            .unwrap();
        let before = mm.stats().arena_bytes;
        store
            .insert(int_entry("c", SourceFormat::Csv, 100))
            .unwrap();
        assert_eq!(mm.stats().arena_bytes, before);
        assert_eq!(store.stats().entries, 1);
    }

    #[test]
    fn replaced_entry_with_outstanding_reader_counts_stale_read() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(int_entry("c", SourceFormat::Json, 10))
            .unwrap();
        let reader = store.lookup_by_signature("sig-c").unwrap();
        store
            .insert(int_entry("c", SourceFormat::Json, 10))
            .unwrap();
        // The reader still sees its (old) handle bit-exactly.
        assert_eq!(reader.row_count(), 10);
        assert_eq!(store.stats().stale_reads, 1);
    }

    #[test]
    fn invalidate_dataset_drops_only_its_caches() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(int_entry("a", SourceFormat::Json, 10))
            .unwrap();
        let mut other = int_entry("b", SourceFormat::Csv, 10);
        other.source_dataset = "orders".into();
        store.insert(other).unwrap();
        assert_eq!(store.invalidate_dataset("lineitem"), 1);
        assert_eq!(store.stats().entries, 1);
        assert!(store.get("b").is_some());
        assert_eq!(store.dataset_revision("lineitem"), 1);
        assert_eq!(store.dataset_revision("orders"), 0);
    }

    #[test]
    fn invalidate_drops_sidecar_atomically() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(int_entry("a", SourceFormat::Json, 10))
            .unwrap();
        assert!(store.set_sidecar("a", Arc::new(42u64)));
        assert!(store.sidecar("a").is_some());
        store.invalidate_dataset("lineitem");
        assert!(store.sidecar("a").is_none());
        // A sidecar cannot attach to a dead entry either.
        assert!(!store.set_sidecar("a", Arc::new(1u64)));
    }

    #[test]
    fn stale_build_is_refused_after_invalidation() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        let revision = store.dataset_revision("lineitem");
        store.invalidate_dataset("lineitem");
        let inserted = store
            .insert_if_current(int_entry("a", SourceFormat::Json, 10), revision)
            .unwrap();
        assert!(!inserted);
        assert_eq!(store.stats().entries, 0);
        assert_eq!(store.memory.stats().arena_bytes, 0);
        // At the current revision the build registers.
        let revision = store.dataset_revision("lineitem");
        assert!(store
            .insert_if_current(int_entry("a", SourceFormat::Json, 10), revision)
            .unwrap());
    }

    #[test]
    fn clear_releases_arena() {
        let mm = MemoryManager::with_budget(1 << 20);
        let store = CacheStore::new(mm.clone());
        store
            .insert(int_entry("a", SourceFormat::Json, 10))
            .unwrap();
        store.clear();
        assert_eq!(mm.stats().arena_bytes, 0);
        assert_eq!(store.stats().entries, 0);
    }

    #[test]
    fn caches_for_dataset_filters() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(int_entry("a", SourceFormat::Json, 10))
            .unwrap();
        store
            .insert(int_entry("b", SourceFormat::Json, 10))
            .unwrap();
        assert_eq!(store.caches_for_dataset("lineitem").len(), 2);
        assert_eq!(store.caches_for_dataset("orders").len(), 0);
    }

    #[test]
    fn entry_column_lookup() {
        let entry = int_entry("a", SourceFormat::Json, 5);
        assert!(entry.column("x").is_some());
        assert!(entry.column("y").is_none());
        assert_eq!(entry.row_count(), 5);
    }

    #[test]
    fn hot_eviction_spills_and_lookup_reloads() {
        let dir = std::env::temp_dir().join("proteus_cache_spill_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CacheStore::new(MemoryManager::with_budget(500));
        store.set_spill_dir(&dir).unwrap();
        store
            .insert(int_entry("hot", SourceFormat::Json, 10))
            .unwrap();
        // Make it hot, then crowd it out with two hotter/costlier entries.
        assert!(store.lookup_by_signature("sig-hot").is_some());
        let mut big = int_entry("big1", SourceFormat::Json, 10);
        big.build_cost = u64::MAX / 4096;
        store.insert(big).unwrap();
        let mut big = int_entry("big2", SourceFormat::Json, 10);
        big.build_cost = u64::MAX / 4096;
        store.insert(big).unwrap();
        assert!(!store.names().contains(&"hot".to_string()));
        assert!(store.spilled_names().contains(&"hot".to_string()));
        let stats = store.stats();
        assert!(stats.spilled_bytes > 0);

        // Lookup reloads it from disk, bit-exact, evicting a resident.
        let reloaded = store.lookup_by_signature("sig-hot").unwrap();
        assert_eq!(
            reloaded.column("x").unwrap(),
            &ColumnData::Int((0..10).collect())
        );
        assert!(store.names().contains(&"hot".to_string()));
        assert!(store.spilled_names().is_empty());
        assert!(store.stats().bytes <= 500);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
