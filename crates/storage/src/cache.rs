//! The adaptive cache store (§6, "Adapting Storage to Workload").
//!
//! Proteus populates binary caches as a side-effect of query execution.
//! Every cache holds the materialized result of an algebraic expression
//! (field projections, arithmetic expressions, record constructions) over one
//! source dataset, stored as packed binary columns. Caches are keyed by the
//! signature of the plan subtree that produced them so the cache-matching
//! pass can splice them into later plans, and evicted under a
//! *data-format-biased* LRU: entries derived from expensive-to-access formats
//! (JSON, then CSV) are favored over entries derived from binary data.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::column::ColumnData;
use crate::error::{Result, StorageError};
use crate::memory::MemoryManager;

/// The format of the dataset a cache was derived from. Ordering encodes the
/// eviction bias: `Json > Csv > Binary` in terms of re-access cost, so binary
/// caches are evicted first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SourceFormat {
    /// Derived from relational binary data (cheap to rebuild).
    Binary,
    /// Derived from a CSV file.
    Csv,
    /// Derived from a JSON file (most expensive to rebuild).
    Json,
}

impl SourceFormat {
    /// Relative re-access cost weight used by the eviction policy.
    pub fn cost_weight(&self) -> u64 {
        match self {
            SourceFormat::Binary => 1,
            SourceFormat::Csv => 4,
            SourceFormat::Json => 16,
        }
    }
}

/// Degree of eagerness used when the cache was built (§6): a cache may hold
/// fully converted binary values, just the byte positions of the values in
/// the original file, or only the OIDs of qualifying entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEagerness {
    /// Fully converted binary values.
    Values,
    /// Byte positions of the values in the source file.
    Positions,
    /// Only the OIDs of qualifying objects.
    OidsOnly,
}

/// One cached expression result.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Unique cache name.
    pub name: String,
    /// Signature of the plan subtree whose output this cache holds; used as
    /// the search key during cache matching.
    pub plan_signature: String,
    /// Human-readable rendering of the cached expressions.
    pub expressions: Vec<String>,
    /// Dataset the cache was derived from.
    pub source_dataset: String,
    /// Format of that dataset (drives the eviction bias).
    pub source_format: SourceFormat,
    /// How eagerly values were materialized.
    pub eagerness: CacheEagerness,
    /// The cached columns, one per expression, aligned by OID order.
    pub columns: Vec<(String, ColumnData)>,
    /// OIDs of the source entries each row corresponds to.
    pub oids: Vec<u64>,
    /// Total footprint in bytes (accounted against the arena budget).
    pub byte_size: usize,
    /// Logical timestamp of the last use.
    last_used: u64,
}

impl CacheEntry {
    /// Number of cached rows.
    pub fn row_count(&self) -> usize {
        self.oids.len()
    }

    /// Looks up a cached column by its expression alias.
    pub fn column(&self, name: &str) -> Option<&ColumnData> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }
}

/// Aggregate statistics of the cache store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of live cache entries.
    pub entries: usize,
    /// Total bytes pinned.
    pub bytes: usize,
    /// Successful cache-matching lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Entries evicted so far.
    pub evictions: u64,
}

struct StoreInner {
    entries: HashMap<String, CacheEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The caching manager: stores, matches and evicts caches.
#[derive(Clone)]
pub struct CacheStore {
    memory: MemoryManager,
    inner: Arc<RwLock<StoreInner>>,
    clock: Arc<AtomicU64>,
}

impl CacheStore {
    /// Creates a cache store accounting against the given memory manager.
    pub fn new(memory: MemoryManager) -> Self {
        CacheStore {
            memory,
            inner: Arc::new(RwLock::new(StoreInner {
                entries: HashMap::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            })),
            clock: Arc::new(AtomicU64::new(1)),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Inserts a cache entry, evicting lower-priority entries if the arena
    /// budget requires it. Returns an error only if the entry cannot fit even
    /// after evicting everything else.
    pub fn insert(&self, mut entry: CacheEntry) -> Result<()> {
        entry.byte_size = entry
            .columns
            .iter()
            .map(|(_, c)| c.byte_size())
            .sum::<usize>()
            + entry.oids.len() * 8;
        entry.last_used = self.tick();

        // Make room: evict until the reservation succeeds.
        loop {
            match self.memory.reserve_arena(entry.byte_size) {
                Ok(()) => break,
                Err(_) => {
                    if !self.evict_one() {
                        return Err(StorageError::OutOfMemory(format!(
                            "cache {} ({} B) cannot fit in the arena",
                            entry.name, entry.byte_size
                        )));
                    }
                }
            }
        }

        let mut inner = self.inner.write();
        if let Some(old) = inner.entries.insert(entry.name.clone(), entry) {
            self.memory.release_arena(old.byte_size);
        }
        Ok(())
    }

    /// Evicts the lowest-priority entry (format-biased LRU). Returns false if
    /// the store is empty.
    fn evict_one(&self) -> bool {
        let mut inner = self.inner.write();
        // Priority = last_used * format cost weight; the smallest priority is
        // evicted first, so cheap-to-rebuild (binary) and cold entries go
        // first while hot JSON-derived caches survive longest.
        let victim = inner
            .entries
            .values()
            .min_by_key(|e| e.last_used.saturating_mul(e.source_format.cost_weight()))
            .map(|e| e.name.clone());
        match victim {
            Some(name) => {
                if let Some(entry) = inner.entries.remove(&name) {
                    self.memory.release_arena(entry.byte_size);
                    inner.evictions += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Looks a cache up by the signature of the plan subtree it replaces.
    /// A hit refreshes the entry's LRU timestamp.
    pub fn lookup_by_signature(&self, signature: &str) -> Option<CacheEntry> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let found = inner
            .entries
            .values_mut()
            .find(|e| e.plan_signature == signature);
        match found {
            Some(entry) => {
                entry.last_used = tick;
                let cloned = entry.clone();
                inner.hits += 1;
                Some(cloned)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Looks a cache up by name without touching hit/miss statistics.
    pub fn get(&self, name: &str) -> Option<CacheEntry> {
        self.inner.read().entries.get(name).cloned()
    }

    /// All caches derived from a given dataset.
    pub fn caches_for_dataset(&self, dataset: &str) -> Vec<CacheEntry> {
        self.inner
            .read()
            .entries
            .values()
            .filter(|e| e.source_dataset == dataset)
            .cloned()
            .collect()
    }

    /// Drops every cache derived from `dataset` (the paper's reaction to data
    /// updates: "Proteus currently drops and rebuilds any affected parts of
    /// existing auxiliary structures").
    pub fn invalidate_dataset(&self, dataset: &str) -> usize {
        let mut inner = self.inner.write();
        let names: Vec<String> = inner
            .entries
            .values()
            .filter(|e| e.source_dataset == dataset)
            .map(|e| e.name.clone())
            .collect();
        for name in &names {
            if let Some(entry) = inner.entries.remove(name) {
                self.memory.release_arena(entry.byte_size);
            }
        }
        names.len()
    }

    /// Removes every cache entry.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        for (_, entry) in inner.entries.drain() {
            self.memory.release_arena(entry.byte_size);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.read();
        CacheStats {
            entries: inner.entries.len(),
            bytes: inner.entries.values().map(|e| e.byte_size).sum(),
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }

    /// Names of all live caches (diagnostics / tests).
    pub fn names(&self) -> Vec<String> {
        self.inner.read().entries.keys().cloned().collect()
    }
}

/// Convenience constructor for cache entries.
pub fn make_entry(
    name: impl Into<String>,
    plan_signature: impl Into<String>,
    source_dataset: impl Into<String>,
    source_format: SourceFormat,
    columns: Vec<(String, ColumnData)>,
    oids: Vec<u64>,
) -> CacheEntry {
    CacheEntry {
        name: name.into(),
        plan_signature: plan_signature.into(),
        expressions: columns.iter().map(|(n, _)| n.clone()).collect(),
        source_dataset: source_dataset.into(),
        source_format,
        eagerness: CacheEagerness::Values,
        columns,
        oids,
        byte_size: 0,
        last_used: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_entry(name: &str, format: SourceFormat, rows: usize) -> CacheEntry {
        make_entry(
            name,
            format!("sig-{name}"),
            "lineitem",
            format,
            vec![("x".to_string(), ColumnData::Int((0..rows as i64).collect()))],
            (0..rows as u64).collect(),
        )
    }

    #[test]
    fn insert_and_lookup_by_signature() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(int_entry("c1", SourceFormat::Json, 100))
            .unwrap();
        let hit = store.lookup_by_signature("sig-c1").unwrap();
        assert_eq!(hit.row_count(), 100);
        assert!(store.lookup_by_signature("sig-unknown").is_none());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn byte_size_is_accounted() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(int_entry("c1", SourceFormat::Csv, 10))
            .unwrap();
        let stats = store.stats();
        // 10 ints (80 B) + 10 oids (80 B).
        assert_eq!(stats.bytes, 160);
    }

    #[test]
    fn eviction_prefers_binary_over_json() {
        // Budget fits roughly two entries of 160 B each.
        let store = CacheStore::new(MemoryManager::with_budget(400));
        store
            .insert(int_entry("json_cache", SourceFormat::Json, 10))
            .unwrap();
        store
            .insert(int_entry("bin_cache", SourceFormat::Binary, 10))
            .unwrap();
        // Touch the binary cache so it is the most recently used.
        assert!(store.lookup_by_signature("sig-bin_cache").is_some());
        // Inserting a third entry forces an eviction; despite being LRU-cold,
        // the JSON cache must survive because its format weight dominates.
        store
            .insert(int_entry("csv_cache", SourceFormat::Csv, 10))
            .unwrap();
        let names = store.names();
        assert!(names.contains(&"json_cache".to_string()));
        assert!(!names.contains(&"bin_cache".to_string()));
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let store = CacheStore::new(MemoryManager::with_budget(100));
        let result = store.insert(int_entry("huge", SourceFormat::Json, 1000));
        assert!(matches!(result, Err(StorageError::OutOfMemory(_))));
    }

    #[test]
    fn reinsert_replaces_and_releases_memory() {
        let mm = MemoryManager::with_budget(10_000);
        let store = CacheStore::new(mm.clone());
        store
            .insert(int_entry("c", SourceFormat::Csv, 100))
            .unwrap();
        let before = mm.stats().arena_bytes;
        store
            .insert(int_entry("c", SourceFormat::Csv, 100))
            .unwrap();
        assert_eq!(mm.stats().arena_bytes, before);
        assert_eq!(store.stats().entries, 1);
    }

    #[test]
    fn invalidate_dataset_drops_only_its_caches() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(int_entry("a", SourceFormat::Json, 10))
            .unwrap();
        let mut other = int_entry("b", SourceFormat::Csv, 10);
        other.source_dataset = "orders".into();
        store.insert(other).unwrap();
        assert_eq!(store.invalidate_dataset("lineitem"), 1);
        assert_eq!(store.stats().entries, 1);
        assert!(store.get("b").is_some());
    }

    #[test]
    fn clear_releases_arena() {
        let mm = MemoryManager::with_budget(1 << 20);
        let store = CacheStore::new(mm.clone());
        store
            .insert(int_entry("a", SourceFormat::Json, 10))
            .unwrap();
        store.clear();
        assert_eq!(mm.stats().arena_bytes, 0);
        assert_eq!(store.stats().entries, 0);
    }

    #[test]
    fn caches_for_dataset_filters() {
        let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
        store
            .insert(int_entry("a", SourceFormat::Json, 10))
            .unwrap();
        store
            .insert(int_entry("b", SourceFormat::Json, 10))
            .unwrap();
        assert_eq!(store.caches_for_dataset("lineitem").len(), 2);
        assert_eq!(store.caches_for_dataset("orders").len(), 0);
    }

    #[test]
    fn entry_column_lookup() {
        let entry = int_entry("a", SourceFormat::Json, 5);
        assert!(entry.column("x").is_some());
        assert!(entry.column("y").is_none());
        assert_eq!(entry.row_count(), 5);
    }
}
