//! Typed column vectors and the on-disk binary column format.
//!
//! §7.1: "Proteus operates over binary column files similar to the ones of
//! MonetDB." This module provides the [`ColumnData`] vectors that the cache
//! store, the binary-column input plug-in and the column-store baseline
//! engines all share, plus reading/writing them as binary files.
//!
//! On-disk layout of a column file:
//!
//! ```text
//! magic "PCOL" | type code u8 | row count u64 LE | payload
//!   Int/Float/Date : row_count × 8-byte LE values
//!   Bool           : row_count × 1 byte
//!   Str            : row_count × (u32 LE length) offsets table, then bytes
//! ```
//!
//! A [`ColumnTable`] is a directory holding one `.col` file per column plus a
//! `_schema.txt` manifest (`name:type` per line) so a table can be reopened
//! without out-of-band schema knowledge.

use std::fs;
use std::path::{Path, PathBuf};

use proteus_algebra::{DataType, Field, Schema, Value};

use crate::error::{Result, StorageError};

const MAGIC: &[u8; 4] = b"PCOL";

/// A typed, fully materialized column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// UTF-8 strings.
    Str(Vec<String>),
}

impl ColumnData {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The [`DataType`] of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Str(_) => DataType::String,
        }
    }

    /// The value at a row index.
    pub fn value_at(&self, idx: usize) -> Option<Value> {
        match self {
            ColumnData::Int(v) => v.get(idx).map(|x| Value::Int(*x)),
            ColumnData::Float(v) => v.get(idx).map(|x| Value::Float(*x)),
            ColumnData::Bool(v) => v.get(idx).map(|x| Value::Bool(*x)),
            ColumnData::Str(v) => v.get(idx).map(|x| Value::Str(x.clone())),
        }
    }

    /// Fills a strided destination slice with the values of rows
    /// `start..start + count`: value `i` lands at `out[base + i * stride]`.
    ///
    /// This is the column side of the morsel scan path: one call per
    /// (column, morsel) with a monomorphic inner loop, instead of one
    /// type-dispatched access per tuple.
    pub fn fill_values(
        &self,
        start: usize,
        count: usize,
        out: &mut [Value],
        base: usize,
        stride: usize,
    ) {
        match self {
            ColumnData::Int(v) => {
                for (i, x) in v[start..start + count].iter().enumerate() {
                    out[base + i * stride] = Value::Int(*x);
                }
            }
            ColumnData::Float(v) => {
                for (i, x) in v[start..start + count].iter().enumerate() {
                    out[base + i * stride] = Value::Float(*x);
                }
            }
            ColumnData::Bool(v) => {
                for (i, x) in v[start..start + count].iter().enumerate() {
                    out[base + i * stride] = Value::Bool(*x);
                }
            }
            ColumnData::Str(v) => {
                for (i, x) in v[start..start + count].iter().enumerate() {
                    out[base + i * stride] = Value::Str(x.clone());
                }
            }
        }
    }

    /// Appends a value, coercing numerics; errors on class mismatch.
    pub fn push_value(&mut self, value: &Value) -> Result<()> {
        match (self, value) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(*x),
            (ColumnData::Int(v), Value::Date(x)) => v.push(*x),
            (ColumnData::Float(v), Value::Float(x)) => v.push(*x),
            (ColumnData::Float(v), Value::Int(x)) => v.push(*x as f64),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(*x),
            (ColumnData::Str(v), Value::Str(x)) => v.push(x.clone()),
            (col, other) => {
                return Err(StorageError::TypeMismatch(format!(
                    "cannot append {other:?} to a {:?} column",
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Creates an empty column of the given type (strings for Any).
    pub fn empty_of(data_type: &DataType) -> ColumnData {
        match data_type {
            DataType::Int | DataType::Date => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
            _ => ColumnData::Str(Vec::new()),
        }
    }

    /// Approximate in-memory footprint in bytes (used for cache accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.iter().map(|s| s.len() + 4).sum(),
        }
    }

    /// Serializes the column to the binary column file layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size() + 16);
        out.extend_from_slice(MAGIC);
        match self {
            ColumnData::Int(v) => {
                out.push(0);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Float(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Bool(v) => {
                out.push(2);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for x in v {
                    out.push(u8::from(*x));
                }
            }
            ColumnData::Str(v) => {
                out.push(3);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for s in v {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                }
                for s in v {
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
        out
    }

    /// Parses a column from its binary layout.
    pub fn from_bytes(data: &[u8]) -> Result<ColumnData> {
        if data.len() < 13 || &data[0..4] != MAGIC {
            return Err(StorageError::Corrupt("bad column magic".into()));
        }
        let type_code = data[4];
        let count = u64::from_le_bytes(
            data[5..13]
                .try_into()
                .map_err(|_| StorageError::Corrupt("truncated header".into()))?,
        ) as usize;
        let payload = &data[13..];
        match type_code {
            0 | 1 => {
                if payload.len() < count * 8 {
                    return Err(StorageError::Corrupt(format!(
                        "truncated numeric payload: need {} bytes at byte offset 13, have {}",
                        count * 8,
                        payload.len()
                    )));
                }
                if type_code == 0 {
                    let mut v = Vec::with_capacity(count);
                    for i in 0..count {
                        v.push(i64::from_le_bytes(
                            payload[i * 8..i * 8 + 8].try_into().unwrap(),
                        ));
                    }
                    Ok(ColumnData::Int(v))
                } else {
                    let mut v = Vec::with_capacity(count);
                    for i in 0..count {
                        v.push(f64::from_le_bytes(
                            payload[i * 8..i * 8 + 8].try_into().unwrap(),
                        ));
                    }
                    Ok(ColumnData::Float(v))
                }
            }
            2 => {
                if payload.len() < count {
                    return Err(StorageError::Corrupt(format!(
                        "truncated bool payload: need {} bytes at byte offset 13, have {}",
                        count,
                        payload.len()
                    )));
                }
                Ok(ColumnData::Bool(
                    payload[..count].iter().map(|b| *b != 0).collect(),
                ))
            }
            3 => {
                if payload.len() < count * 4 {
                    return Err(StorageError::Corrupt(format!(
                        "truncated string offsets: need {} bytes at byte offset 13, have {}",
                        count * 4,
                        payload.len()
                    )));
                }
                let mut lengths = Vec::with_capacity(count);
                for i in 0..count {
                    lengths.push(
                        u32::from_le_bytes(payload[i * 4..i * 4 + 4].try_into().unwrap()) as usize,
                    );
                }
                let mut strings = Vec::with_capacity(count);
                let mut offset = count * 4;
                for len in lengths {
                    if offset + len > payload.len() {
                        return Err(StorageError::Corrupt(format!(
                            "truncated string payload: string of {} bytes at byte offset {} overruns column end {}",
                            len,
                            13 + offset,
                            13 + payload.len()
                        )));
                    }
                    let s = std::str::from_utf8(&payload[offset..offset + len])
                        .map_err(|_| {
                            StorageError::Corrupt("invalid utf-8 in string column".into())
                        })?
                        .to_string();
                    strings.push(s);
                    offset += len;
                }
                Ok(ColumnData::Str(strings))
            }
            other => Err(StorageError::Corrupt(format!(
                "unknown column type code {other}"
            ))),
        }
    }
}

/// A table stored column-by-column on disk.
#[derive(Debug, Clone)]
pub struct ColumnTable {
    /// Directory holding the column files.
    pub dir: PathBuf,
    /// Table schema.
    pub schema: Schema,
    /// Number of rows.
    pub row_count: usize,
}

impl ColumnTable {
    /// Writes a set of named columns as a column table directory.
    pub fn write(dir: impl AsRef<Path>, columns: &[(String, ColumnData)]) -> Result<ColumnTable> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let row_count = columns.first().map(|(_, c)| c.len()).unwrap_or(0);
        let mut manifest = String::new();
        for (name, column) in columns {
            if column.len() != row_count {
                return Err(StorageError::Corrupt(format!(
                    "column {name} has {} rows, expected {row_count}",
                    column.len()
                )));
            }
            fs::write(dir.join(format!("{name}.col")), column.to_bytes())?;
            let type_name = match column.data_type() {
                DataType::Int => "int",
                DataType::Float => "float",
                DataType::Bool => "bool",
                _ => "string",
            };
            manifest.push_str(&format!("{name}:{type_name}\n"));
        }
        fs::write(dir.join("_schema.txt"), &manifest)?;
        let schema = Schema::new(
            columns
                .iter()
                .map(|(name, col)| Field::new(name.clone(), col.data_type()))
                .collect(),
        );
        Ok(ColumnTable {
            dir,
            schema,
            row_count,
        })
    }

    /// Opens an existing column table directory by reading its manifest.
    pub fn open(dir: impl AsRef<Path>) -> Result<ColumnTable> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = fs::read_to_string(dir.join("_schema.txt")).map_err(|_| {
            StorageError::NotFound(format!("{} is not a column table", dir.display()))
        })?;
        let mut fields = Vec::new();
        for line in manifest.lines().filter(|l| !l.trim().is_empty()) {
            let (name, type_name) = line
                .split_once(':')
                .ok_or_else(|| StorageError::Corrupt(format!("bad manifest line: {line}")))?;
            let data_type = match type_name.trim() {
                "int" => DataType::Int,
                "float" => DataType::Float,
                "bool" => DataType::Bool,
                _ => DataType::String,
            };
            fields.push(Field::new(name.trim(), data_type));
        }
        let schema = Schema::new(fields);
        let row_count = match schema.fields().first() {
            Some(field) => {
                let col = Self::read_column_file(&dir, &field.name)?;
                col.len()
            }
            None => 0,
        };
        Ok(ColumnTable {
            dir,
            schema,
            row_count,
        })
    }

    /// Reads one column of the table.
    pub fn read_column(&self, name: &str) -> Result<ColumnData> {
        if self.schema.index_of(name).is_none() {
            return Err(StorageError::NotFound(format!(
                "column {name} in {}",
                self.dir.display()
            )));
        }
        Self::read_column_file(&self.dir, name)
    }

    fn read_column_file(dir: &Path, name: &str) -> Result<ColumnData> {
        let bytes = fs::read(dir.join(format!("{name}.col")))?;
        ColumnData::from_bytes(&bytes)
    }

    /// Total on-disk size of the table in bytes.
    pub fn disk_size(&self) -> Result<u64> {
        let mut total = 0;
        for entry in fs::read_dir(&self.dir)? {
            total += entry?.metadata()?.len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("proteus_col_tests").join(name);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn int_column_round_trip() {
        let col = ColumnData::Int(vec![1, -5, 1 << 40]);
        let parsed = ColumnData::from_bytes(&col.to_bytes()).unwrap();
        assert_eq!(col, parsed);
    }

    #[test]
    fn float_and_bool_round_trip() {
        let col = ColumnData::Float(vec![1.5, -2.25, 0.0]);
        assert_eq!(ColumnData::from_bytes(&col.to_bytes()).unwrap(), col);
        let col = ColumnData::Bool(vec![true, false, true]);
        assert_eq!(ColumnData::from_bytes(&col.to_bytes()).unwrap(), col);
    }

    #[test]
    fn string_column_round_trip() {
        let col = ColumnData::Str(vec!["".into(), "héllo".into(), "proteus".into()]);
        assert_eq!(ColumnData::from_bytes(&col.to_bytes()).unwrap(), col);
    }

    #[test]
    fn corrupt_data_is_rejected() {
        assert!(ColumnData::from_bytes(b"nope").is_err());
        let mut bytes = ColumnData::Int(vec![1, 2, 3]).to_bytes();
        bytes.truncate(bytes.len() - 4);
        assert!(ColumnData::from_bytes(&bytes).is_err());
    }

    #[test]
    fn push_value_coerces_numerics() {
        let mut col = ColumnData::Float(Vec::new());
        col.push_value(&Value::Int(3)).unwrap();
        col.push_value(&Value::Float(1.5)).unwrap();
        assert_eq!(col, ColumnData::Float(vec![3.0, 1.5]));
        assert!(col.push_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn value_at_and_len() {
        let col = ColumnData::Str(vec!["a".into(), "b".into()]);
        assert_eq!(col.len(), 2);
        assert_eq!(col.value_at(1), Some(Value::Str("b".into())));
        assert_eq!(col.value_at(5), None);
    }

    #[test]
    fn table_write_open_read() {
        let dir = temp_dir("write_open");
        let columns = vec![
            ("id".to_string(), ColumnData::Int(vec![1, 2, 3])),
            (
                "price".to_string(),
                ColumnData::Float(vec![10.0, 20.0, 30.0]),
            ),
            (
                "name".to_string(),
                ColumnData::Str(vec!["a".into(), "b".into(), "c".into()]),
            ),
        ];
        let table = ColumnTable::write(&dir, &columns).unwrap();
        assert_eq!(table.row_count, 3);

        let reopened = ColumnTable::open(&dir).unwrap();
        assert_eq!(reopened.row_count, 3);
        assert_eq!(reopened.schema.names(), vec!["id", "price", "name"]);
        assert_eq!(
            reopened.read_column("price").unwrap(),
            ColumnData::Float(vec![10.0, 20.0, 30.0])
        );
        assert!(reopened.read_column("missing").is_err());
        assert!(reopened.disk_size().unwrap() > 0);
    }

    #[test]
    fn mismatched_row_counts_rejected() {
        let dir = temp_dir("mismatch");
        let columns = vec![
            ("a".to_string(), ColumnData::Int(vec![1, 2])),
            ("b".to_string(), ColumnData::Int(vec![1])),
        ];
        assert!(ColumnTable::write(&dir, &columns).is_err());
    }

    #[test]
    fn open_missing_table_is_not_found() {
        assert!(matches!(
            ColumnTable::open("/nonexistent/proteus/table"),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn empty_of_matches_types() {
        assert_eq!(
            ColumnData::empty_of(&DataType::Int).data_type(),
            DataType::Int
        );
        assert_eq!(
            ColumnData::empty_of(&DataType::String).data_type(),
            DataType::String
        );
    }
}
