//! Error type for the storage layer.

use std::fmt;
use std::io;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A binary file did not have the expected layout.
    Corrupt(String),
    /// A requested table/column/cache does not exist.
    NotFound(String),
    /// A type mismatch between what was stored and what was requested.
    TypeMismatch(String),
    /// The cache arena budget would be exceeded and nothing can be evicted.
    OutOfMemory(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt binary data: {msg}"),
            StorageError::NotFound(what) => write!(f, "not found: {what}"),
            StorageError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            StorageError::OutOfMemory(msg) => write!(f, "cache arena exhausted: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_converts() {
        let err: StorageError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(err.to_string().contains("gone"));
    }

    #[test]
    fn display_variants() {
        assert!(StorageError::NotFound("cache x".into())
            .to_string()
            .contains("cache x"));
        assert!(StorageError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }
}
