//! # proteus-storage
//!
//! The storage substrate of the Proteus reproduction:
//!
//! * [`memory`] — the Memory Manager of §4: input files are mapped into
//!   memory and treated as memory-resident; cache structures are pinned in a
//!   budgeted arena.
//! * [`column`](mod@column) — typed in-memory column vectors plus the on-disk binary
//!   column format ("Proteus operates over binary column files similar to the
//!   ones of MonetDB", §7.1).
//! * [`row`] — the on-disk binary row format (row-oriented relational binary
//!   data, one of the plug-in formats of §5.2).
//! * [`cache`] — the adaptive cache store of §6: caches of query-defined
//!   shape, keyed by plan signature, evicted with a data-format-biased LRU.

pub mod cache;
pub mod column;
pub mod error;
pub mod memory;
pub mod row;

pub use cache::{CacheEntry, CacheStore, SourceFormat};
pub use column::{ColumnData, ColumnTable};
pub use error::{Result, StorageError};
pub use memory::MemoryManager;
pub use row::{RowTable, RowTableReader};
