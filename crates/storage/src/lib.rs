//! # proteus-storage
//!
//! The storage substrate of the Proteus reproduction:
//!
//! * [`memory`] — the Memory Manager of §4: input files are mapped into
//!   memory and treated as memory-resident; cache structures are pinned in a
//!   budgeted arena.
//! * [`column`](mod@column) — typed in-memory column vectors plus the on-disk binary
//!   column format ("Proteus operates over binary column files similar to the
//!   ones of MonetDB", §7.1).
//! * [`row`] — the on-disk binary row format (row-oriented relational binary
//!   data, one of the plug-in formats of §5.2).
//! * [`cache`] — the adaptive cache store of §6 grown into a production
//!   subsystem: caches of query-defined shape, keyed by plan signature,
//!   budgeted with cost/benefit eviction, spilled to disk when hot, and
//!   handed out as `Arc` handles so readers survive rebuilds.
//! * [`persist`] — checksummed, versioned on-disk cache frames backing
//!   spill and warm-restart snapshots.

pub mod cache;
pub mod column;
pub mod error;
pub mod memory;
pub mod persist;
pub mod row;

pub use cache::{CacheEntry, CacheSidecar, CacheStats, CacheStore, SourceFormat};
pub use column::{ColumnData, ColumnTable};
pub use error::{Result, StorageError};
pub use memory::MemoryManager;
pub use persist::WarmReport;
pub use row::{RowTable, RowTableReader};
