//! The Memory Manager (§4).
//!
//! "Whenever a system component requests a memory block to read/write, the
//! Memory Manager handles the request. The Manager distinguishes between
//! input files and caching structures: It memory-maps input files, treating
//! all input data as if it is memory-resident, and delegates paging to the OS
//! virtual memory manager. As for caching structures, Proteus pins them in a
//! memory arena."
//!
//! In this reproduction, "memory mapping" an input file loads it once into a
//! shared, immutable byte buffer ([`bytes::Bytes`]) that every plug-in
//! accesses zero-copy; cache structures are allocated through a budgeted
//! arena whose usage the [`crate::cache::CacheStore`] reports against its
//! eviction policy.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::{Result, StorageError};

/// Statistics about what the memory manager currently holds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Number of distinct input files mapped.
    pub mapped_files: usize,
    /// Total bytes of mapped input data.
    pub mapped_bytes: usize,
    /// Bytes currently pinned in the cache arena.
    pub arena_bytes: usize,
    /// Configured cache arena budget in bytes.
    pub arena_budget: usize,
}

#[derive(Default)]
struct Inner {
    mapped: HashMap<PathBuf, Bytes>,
    arena_bytes: usize,
}

/// The memory manager: maps input files and accounts for cache arena usage.
///
/// The manager is cheap to clone (it is an `Arc` internally) so every plug-in
/// and the cache store can share it.
#[derive(Clone)]
pub struct MemoryManager {
    inner: Arc<RwLock<Inner>>,
    arena_budget: usize,
}

impl MemoryManager {
    /// Default cache arena budget: 256 MiB, scaled-down stand-in for the
    /// paper's memory-resident cache arena.
    pub const DEFAULT_ARENA_BUDGET: usize = 256 * 1024 * 1024;

    /// Creates a manager with the default arena budget.
    pub fn new() -> Self {
        Self::with_budget(Self::DEFAULT_ARENA_BUDGET)
    }

    /// Creates a manager with an explicit cache arena budget in bytes.
    pub fn with_budget(arena_budget: usize) -> Self {
        MemoryManager {
            inner: Arc::new(RwLock::new(Inner::default())),
            arena_budget,
        }
    }

    /// Maps an input file, returning its contents as a shared byte buffer.
    /// Repeated calls for the same path return the already-mapped buffer.
    pub fn map_file(&self, path: impl AsRef<Path>) -> Result<Bytes> {
        let path = path.as_ref().to_path_buf();
        {
            let inner = self.inner.read();
            if let Some(bytes) = inner.mapped.get(&path) {
                return Ok(bytes.clone());
            }
        }
        let data = fs::read(&path)?;
        let bytes = Bytes::from(data);
        let mut inner = self.inner.write();
        let entry = inner.mapped.entry(path).or_insert_with(|| bytes.clone());
        Ok(entry.clone())
    }

    /// Registers an in-memory buffer under a virtual path (used by tests and
    /// by generators that build datasets in memory).
    pub fn register_buffer(&self, path: impl AsRef<Path>, data: Vec<u8>) -> Bytes {
        let bytes = Bytes::from(data);
        self.inner
            .write()
            .mapped
            .insert(path.as_ref().to_path_buf(), bytes.clone());
        bytes
    }

    /// Drops a mapping (e.g. after a file was rewritten by an append).
    pub fn unmap_file(&self, path: impl AsRef<Path>) {
        self.inner.write().mapped.remove(path.as_ref());
    }

    /// True if the path is currently mapped.
    pub fn is_mapped(&self, path: impl AsRef<Path>) -> bool {
        self.inner.read().mapped.contains_key(path.as_ref())
    }

    /// Reserves cache arena space. Fails when the budget would be exceeded;
    /// the cache store reacts by evicting entries and retrying.
    pub fn reserve_arena(&self, bytes: usize) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.arena_bytes + bytes > self.arena_budget {
            return Err(StorageError::OutOfMemory(format!(
                "requested {bytes} B, used {} B of {} B budget",
                inner.arena_bytes, self.arena_budget
            )));
        }
        inner.arena_bytes += bytes;
        Ok(())
    }

    /// Releases previously reserved arena space.
    pub fn release_arena(&self, bytes: usize) {
        let mut inner = self.inner.write();
        inner.arena_bytes = inner.arena_bytes.saturating_sub(bytes);
    }

    /// The configured arena budget in bytes.
    pub fn arena_budget(&self) -> usize {
        self.arena_budget
    }

    /// Current usage statistics.
    pub fn stats(&self) -> MemoryStats {
        let inner = self.inner.read();
        MemoryStats {
            mapped_files: inner.mapped.len(),
            mapped_bytes: inner.mapped.values().map(|b| b.len()).sum(),
            arena_bytes: inner.arena_bytes,
            arena_budget: self.arena_budget,
        }
    }
}

impl Default for MemoryManager {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryManager {
    /// Returns an already registered/mapped buffer without touching the file
    /// system (test/diagnostic helper).
    pub fn map_file_if_registered(&self, path: impl AsRef<Path>) -> Option<Bytes> {
        self.inner.read().mapped.get(path.as_ref()).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_a_file_caches_the_buffer() {
        let dir = std::env::temp_dir().join("proteus_mm_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        fs::write(&path, b"1,2,3\n4,5,6\n").unwrap();

        let mm = MemoryManager::new();
        let a = mm.map_file(&path).unwrap();
        let b = mm.map_file(&path).unwrap();
        assert_eq!(a, b);
        assert!(mm.is_mapped(&path));
        assert_eq!(mm.stats().mapped_files, 1);
        assert_eq!(mm.stats().mapped_bytes, 12);

        mm.unmap_file(&path);
        assert!(!mm.is_mapped(&path));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let mm = MemoryManager::new();
        assert!(matches!(
            mm.map_file("/nonexistent/proteus/file.bin"),
            Err(StorageError::Io(_))
        ));
    }

    #[test]
    fn register_buffer_acts_like_a_mapped_file() {
        let mm = MemoryManager::new();
        mm.register_buffer("virtual://lineitem.json", b"{}".to_vec());
        assert!(mm.is_mapped("virtual://lineitem.json"));
        let bytes = mm.map_file_if_registered("virtual://lineitem.json");
        assert_eq!(bytes.unwrap().len(), 2);
    }

    #[test]
    fn arena_budget_is_enforced() {
        let mm = MemoryManager::with_budget(100);
        mm.reserve_arena(60).unwrap();
        mm.reserve_arena(30).unwrap();
        assert!(mm.reserve_arena(20).is_err());
        mm.release_arena(50);
        mm.reserve_arena(20).unwrap();
        assert_eq!(mm.stats().arena_bytes, 60);
    }

    #[test]
    fn release_never_underflows() {
        let mm = MemoryManager::with_budget(10);
        mm.release_arena(100);
        assert_eq!(mm.stats().arena_bytes, 0);
    }
}
