//! Cache persistence: spill files and warm-restart snapshots.
//!
//! Evicted-but-hot cache entries and full cache-directory snapshots are
//! written as `.pcache` files, one entry per file:
//!
//! ```text
//! "PCHE" | version u16 | reserved u16 | body_len u64 | body_crc32 u32 | body
//! ```
//!
//! The body carries the complete [`CacheEntry`] — identity (name, plan
//! signature, source dataset/format/eagerness), heat (build cost, hit
//! count), OIDs, every column in the `PCOL` layout, and per-column zone
//! frames (min/max/null-count per 1024-row chunk). The zone frames are
//! redundant with the columns by construction; the reader recomputes them
//! and rejects the file on any bitwise mismatch, so a file whose payload
//! decoded "successfully" but inconsistently is still refused. Bad magic,
//! unknown versions, truncation and CRC mismatches are all surfaced as
//! [`StorageError::Corrupt`] — callers degrade to a cache miss, never to a
//! wrong answer.

use std::path::Path;

use crate::cache::{CacheEagerness, CacheEntry, CacheStore, SourceFormat, CACHE_ZONE_ROWS};
use crate::column::ColumnData;
use crate::error::{Result, StorageError};

const MAGIC: &[u8; 4] = b"PCHE";

/// On-disk snapshot format version; bumped on any layout change so stale
/// files from older builds are rejected instead of misread.
pub const CACHE_SNAPSHOT_VERSION: u16 = 1;

const HEADER_LEN: usize = 4 + 2 + 2 + 8 + 4;

/// Outcome of [`warm`]: how many snapshot files were restored, refused
/// (corrupt/stale/fault-injected), or dropped for lack of budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmReport {
    /// Entries restored into the store.
    pub loaded: usize,
    /// Files rejected as corrupt, truncated, stale-versioned, or refused by
    /// the `cache.load` fault site.
    pub rejected: usize,
    /// Well-formed entries that did not fit the arena budget.
    pub skipped: usize,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, bitwise — no table, cold path only).

fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for byte in data {
        crc ^= *byte as u32;
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Body writer/reader.

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64_bits(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(StorageError::Corrupt(format!(
                "truncated cache frame: need {} bytes at offset {}, have {}",
                n,
                self.pos,
                self.data.len() - self.pos
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn f64_bits(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Corrupt("non-UTF-8 string in cache frame".into()))
    }
    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

// ---------------------------------------------------------------------------
// Zone frames: per-column, per-1024-row min/max/null summaries. They are
// derived from the column on both sides; comparing them bitwise gives the
// reader an independent consistency check on the decoded payload.

#[derive(PartialEq)]
struct ZoneFrame {
    rows: u32,
    nulls: u32,
    min_bits: u64,
    max_bits: u64,
    numeric: u8,
}

fn zone_frames(col: &ColumnData) -> Vec<ZoneFrame> {
    let rows = col.len();
    let chunks = rows.div_ceil(CACHE_ZONE_ROWS).max(1);
    (0..chunks)
        .map(|c| {
            let start = c * CACHE_ZONE_ROWS;
            let count = (rows - start).min(CACHE_ZONE_ROWS);
            let (min, max, numeric) = match col {
                ColumnData::Int(v) => {
                    let slice = &v[start..start + count];
                    (
                        slice.iter().copied().min().unwrap_or(0) as f64,
                        slice.iter().copied().max().unwrap_or(0) as f64,
                        1,
                    )
                }
                ColumnData::Float(v) => {
                    let slice = &v[start..start + count];
                    (
                        slice.iter().copied().fold(f64::INFINITY, f64::min),
                        slice.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        1,
                    )
                }
                _ => (0.0, 0.0, 0),
            };
            ZoneFrame {
                rows: count as u32,
                nulls: 0,
                min_bits: min.to_bits(),
                max_bits: max.to_bits(),
                numeric,
            }
        })
        .collect()
}

fn format_code(format: SourceFormat) -> u8 {
    match format {
        SourceFormat::Binary => 0,
        SourceFormat::Csv => 1,
        SourceFormat::Json => 2,
    }
}

fn format_from_code(code: u8) -> Result<SourceFormat> {
    match code {
        0 => Ok(SourceFormat::Binary),
        1 => Ok(SourceFormat::Csv),
        2 => Ok(SourceFormat::Json),
        other => Err(StorageError::Corrupt(format!(
            "unknown source-format code {other}"
        ))),
    }
}

fn eagerness_code(e: CacheEagerness) -> u8 {
    match e {
        CacheEagerness::Values => 0,
        CacheEagerness::Positions => 1,
        CacheEagerness::OidsOnly => 2,
    }
}

fn eagerness_from_code(code: u8) -> Result<CacheEagerness> {
    match code {
        0 => Ok(CacheEagerness::Values),
        1 => Ok(CacheEagerness::Positions),
        2 => Ok(CacheEagerness::OidsOnly),
        other => Err(StorageError::Corrupt(format!(
            "unknown eagerness code {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Entry files.

/// Deterministic file name for an entry: a sanitized prefix for human
/// inspection plus an FNV-1a hash of the full name for uniqueness.
pub fn entry_file_name(name: &str) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let prefix: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .take(40)
        .collect();
    format!("{prefix}-{hash:016x}.pcache")
}

fn encode_entry(entry: &CacheEntry) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&entry.name);
    w.str(&entry.plan_signature);
    w.str(&entry.source_dataset);
    w.u8(format_code(entry.source_format));
    w.u8(eagerness_code(entry.eagerness));
    w.u64(entry.build_cost);
    w.u64(entry.hits());
    w.u32(entry.expressions.len() as u32);
    for expr in &entry.expressions {
        w.str(expr);
    }
    w.u64(entry.oids.len() as u64);
    for oid in &entry.oids {
        w.u64(*oid);
    }
    w.u32(entry.columns.len() as u32);
    for (name, col) in &entry.columns {
        w.str(name);
        w.bytes(&col.to_bytes());
        let frames = zone_frames(col);
        w.u32(frames.len() as u32);
        for frame in frames {
            w.u32(frame.rows);
            w.u32(frame.nulls);
            w.f64_bits(f64::from_bits(frame.min_bits));
            w.f64_bits(f64::from_bits(frame.max_bits));
            w.u8(frame.numeric);
        }
    }
    w.buf
}

fn decode_entry(body: &[u8]) -> Result<CacheEntry> {
    let mut r = Reader::new(body);
    let name = r.str()?;
    let plan_signature = r.str()?;
    let source_dataset = r.str()?;
    let source_format = format_from_code(r.u8()?)?;
    let eagerness = eagerness_from_code(r.u8()?)?;
    let build_cost = r.u64()?;
    let hit_count = r.u64()?;
    let expr_count = r.u32()? as usize;
    let mut expressions = Vec::with_capacity(expr_count.min(4096));
    for _ in 0..expr_count {
        expressions.push(r.str()?);
    }
    let oid_count = r.u64()? as usize;
    if oid_count.saturating_mul(8) > body.len() {
        return Err(StorageError::Corrupt(format!(
            "oid count {oid_count} exceeds frame size"
        )));
    }
    let mut oids = Vec::with_capacity(oid_count);
    for _ in 0..oid_count {
        oids.push(r.u64()?);
    }
    let col_count = r.u32()? as usize;
    let mut columns = Vec::with_capacity(col_count.min(4096));
    for _ in 0..col_count {
        let col_name = r.str()?;
        let blob_len = r.u64()? as usize;
        let blob = r.take(blob_len)?;
        let col = ColumnData::from_bytes(blob)?;
        if col.len() != oids.len() {
            return Err(StorageError::Corrupt(format!(
                "column {col_name} has {} rows, expected {}",
                col.len(),
                oids.len()
            )));
        }
        // Zone frames must match what we would derive from the decoded
        // column — an independent consistency check beyond the CRC.
        let expected = zone_frames(&col);
        let frame_count = r.u32()? as usize;
        if frame_count != expected.len() {
            return Err(StorageError::Corrupt(format!(
                "column {col_name}: {frame_count} zone frames, expected {}",
                expected.len()
            )));
        }
        for want in &expected {
            let frame = ZoneFrame {
                rows: r.u32()?,
                nulls: r.u32()?,
                min_bits: r.f64_bits()?.to_bits(),
                max_bits: r.f64_bits()?.to_bits(),
                numeric: r.u8()?,
            };
            if frame != *want {
                return Err(StorageError::Corrupt(format!(
                    "column {col_name}: zone frame does not match column data"
                )));
            }
        }
        columns.push((col_name, col));
    }
    if !r.done() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after cache frame",
            body.len() - r.pos
        )));
    }
    let entry = crate::cache::make_entry(
        name,
        plan_signature,
        source_dataset,
        source_format,
        columns,
        oids,
    );
    let mut entry = entry;
    entry.eagerness = eagerness;
    entry.expressions = expressions;
    entry.build_cost = build_cost;
    entry.set_hits(hit_count);
    Ok(entry)
}

/// Writes one cache entry to `path` (atomically, via a temp file rename).
pub fn write_entry(entry: &CacheEntry, path: &Path) -> Result<()> {
    let body = encode_entry(entry);
    let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
    frame.extend_from_slice(MAGIC);
    frame.extend_from_slice(&CACHE_SNAPSHOT_VERSION.to_le_bytes());
    frame.extend_from_slice(&0u16.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u64).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    let tmp = path.with_extension("pcache.tmp");
    std::fs::write(&tmp, &frame)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads one cache entry from `path`, rejecting bad magic, unknown
/// versions, truncation, CRC mismatches and inconsistent zone frames as
/// [`StorageError::Corrupt`]. The returned entry carries its persisted
/// heat (`build_cost`, hit count); `byte_size` is left for the store to
/// recompute on insert.
pub fn read_entry(path: &Path) -> Result<CacheEntry> {
    let data = std::fs::read(path)?;
    if data.len() < HEADER_LEN {
        return Err(StorageError::Corrupt(format!(
            "cache file too short ({} bytes)",
            data.len()
        )));
    }
    if &data[0..4] != MAGIC {
        return Err(StorageError::Corrupt("bad cache-file magic".into()));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != CACHE_SNAPSHOT_VERSION {
        return Err(StorageError::Corrupt(format!(
            "cache file version {version}, expected {CACHE_SNAPSHOT_VERSION}"
        )));
    }
    let body_len = u64::from_le_bytes([
        data[8], data[9], data[10], data[11], data[12], data[13], data[14], data[15],
    ]) as usize;
    let crc = u32::from_le_bytes([data[16], data[17], data[18], data[19]]);
    let body = &data[HEADER_LEN..];
    if body.len() != body_len {
        return Err(StorageError::Corrupt(format!(
            "cache body is {} bytes, header says {}",
            body.len(),
            body_len
        )));
    }
    if crc32(body) != crc {
        return Err(StorageError::Corrupt("cache body CRC mismatch".into()));
    }
    decode_entry(body)
}

/// Snapshots every live cache entry into `dir` (created if needed; old
/// `.pcache` files are removed first so the directory mirrors the store).
/// Entries refused by the `cache.spill` fault site are skipped. Returns
/// the number of entries written.
pub fn snapshot(store: &CacheStore, dir: &Path) -> Result<usize> {
    std::fs::create_dir_all(dir)?;
    for existing in std::fs::read_dir(dir)? {
        let path = existing?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("pcache") {
            let _ = std::fs::remove_file(&path);
        }
    }
    let mut entries = store.entries_snapshot();
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    let mut written = 0;
    for entry in entries {
        if store.probe("cache.spill").is_err() {
            continue;
        }
        write_entry(&entry, &dir.join(entry_file_name(&entry.name)))?;
        written += 1;
    }
    Ok(written)
}

/// Restores a snapshot directory into the store. Files that fail the
/// `cache.load` fault site or any integrity check count as `rejected`;
/// well-formed entries the budget cannot hold count as `skipped`. Load
/// order is deterministic (sorted file names), so which entries survive a
/// tight budget is reproducible.
pub fn warm(store: &CacheStore, dir: &Path) -> Result<WarmReport> {
    let mut report = WarmReport::default();
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("pcache"))
        .collect();
    paths.sort();
    for path in paths {
        if store.probe("cache.load").is_err() {
            report.rejected += 1;
            continue;
        }
        let entry = match read_entry(&path) {
            Ok(entry) => entry,
            Err(_) => {
                report.rejected += 1;
                continue;
            }
        };
        match store.insert(entry) {
            Ok(()) => report.loaded += 1,
            Err(_) => report.skipped += 1,
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::make_entry;
    use crate::memory::MemoryManager;

    fn sample_entry() -> CacheEntry {
        let mut entry = make_entry(
            "lineitem::price+qty",
            "sig-price-qty",
            "lineitem",
            SourceFormat::Json,
            vec![
                (
                    "price".to_string(),
                    ColumnData::Float((0..2000).map(|i| i as f64 * 1.5).collect()),
                ),
                ("qty".to_string(), ColumnData::Int((0..2000).collect())),
                (
                    "tag".to_string(),
                    ColumnData::Str((0..2000).map(|i| format!("t{i}")).collect()),
                ),
            ],
            (0..2000).collect(),
        );
        entry.build_cost = 12345;
        entry.set_hits(7);
        entry
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("proteus_persist_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let dir = tmp_dir("roundtrip");
        let entry = sample_entry();
        let path = dir.join(entry_file_name(&entry.name));
        write_entry(&entry, &path).unwrap();
        let restored = read_entry(&path).unwrap();
        assert_eq!(restored.name, entry.name);
        assert_eq!(restored.plan_signature, entry.plan_signature);
        assert_eq!(restored.source_dataset, entry.source_dataset);
        assert_eq!(restored.source_format, entry.source_format);
        assert_eq!(restored.columns, entry.columns);
        assert_eq!(restored.oids, entry.oids);
        assert_eq!(restored.build_cost, 12345);
        assert_eq!(restored.hits(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = tmp_dir("truncated");
        let entry = sample_entry();
        let path = dir.join("e.pcache");
        write_entry(&entry, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 5, data.len() - 1] {
            std::fs::write(&path, &data[..cut]).unwrap();
            assert!(
                matches!(read_entry(&path), Err(StorageError::Corrupt(_))),
                "cut at {cut} must be rejected"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let dir = tmp_dir("corrupt");
        let entry = sample_entry();
        let path = dir.join("e.pcache");
        write_entry(&entry, &path).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte: CRC must catch it.
        let mid = HEADER_LEN + (data.len() - HEADER_LEN) / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(read_entry(&path), Err(StorageError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_version_is_rejected() {
        let dir = tmp_dir("version");
        let entry = sample_entry();
        let path = dir.join("e.pcache");
        write_entry(&entry, &path).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[4] = 0xFE;
        data[5] = 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(read_entry(&path), Err(StorageError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_file_is_rejected() {
        let dir = tmp_dir("garbage");
        let path = dir.join("e.pcache");
        std::fs::write(&path, b"not a cache file at all, but long enough....").unwrap();
        assert!(matches!(read_entry(&path), Err(StorageError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_and_warm_round_trip() {
        let dir = tmp_dir("snapshot");
        let store = CacheStore::new(MemoryManager::with_budget(1 << 22));
        store.insert(sample_entry()).unwrap();
        let mut second = sample_entry();
        second.name = "other".into();
        second.plan_signature = "sig-other".into();
        store.insert(second).unwrap();
        assert_eq!(snapshot(&store, &dir).unwrap(), 2);

        let restored = CacheStore::new(MemoryManager::with_budget(1 << 22));
        let report = warm(&restored, &dir).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.rejected, 0);
        let entry = restored.lookup_by_signature("sig-price-qty").unwrap();
        assert_eq!(entry.columns, sample_entry().columns);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_rejects_corrupt_keeps_good() {
        let dir = tmp_dir("warm_mixed");
        let store = CacheStore::new(MemoryManager::with_budget(1 << 22));
        store.insert(sample_entry()).unwrap();
        snapshot(&store, &dir).unwrap();
        std::fs::write(dir.join("zz_bad.pcache"), b"garbage garbage garbage").unwrap();

        let restored = CacheStore::new(MemoryManager::with_budget(1 << 22));
        let report = warm(&restored, &dir).unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(report.rejected, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_skips_entries_over_budget() {
        let dir = tmp_dir("warm_budget");
        let store = CacheStore::new(MemoryManager::with_budget(1 << 22));
        store.insert(sample_entry()).unwrap();
        snapshot(&store, &dir).unwrap();

        let tiny = CacheStore::new(MemoryManager::with_budget(64));
        let report = warm(&tiny, &dir).unwrap();
        assert_eq!(report.loaded, 0);
        assert_eq!(report.skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_file_names_are_distinct_and_safe() {
        let a = entry_file_name("ds::a+b");
        let b = entry_file_name("ds::a+c");
        assert_ne!(a, b);
        assert!(a.ends_with(".pcache"));
        assert!(!a.contains(':') && !a.contains('+'));
    }
}
