//! The on-disk binary row format (row-oriented relational binary data).
//!
//! §5.2: "For binary relational data, an input plug-in generates code reading
//! the memory positions of the required data fields." The row format makes
//! that possible: every row occupies a fixed number of bytes, so the position
//! of field `f` of row `r` is `header + r * row_width + field_offset(f)` —
//! exactly the kind of address arithmetic the paper's generated code emits.
//!
//! Layout:
//!
//! ```text
//! magic "PROW" | field count u16 | per field: type code u8, name len u16, name bytes
//! row count u64 | row width u32
//! fixed region: row_count × row_width bytes
//!   Int/Float/Date → 8 bytes, Bool → 1 byte, Str → 8-byte offset + 8-byte length into the heap
//! heap: variable-length string bytes
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use proteus_algebra::{DataType, Field, Schema, Value};

use crate::error::{Result, StorageError};

const MAGIC: &[u8; 4] = b"PROW";

fn type_code(dt: &DataType) -> u8 {
    match dt {
        DataType::Int | DataType::Date => 0,
        DataType::Float => 1,
        DataType::Bool => 2,
        _ => 3,
    }
}

fn code_type(code: u8) -> DataType {
    match code {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Bool,
        _ => DataType::String,
    }
}

fn field_width(code: u8) -> usize {
    match code {
        2 => 1,
        3 => 16,
        _ => 8,
    }
}

/// Writer/metadata for a binary row table.
#[derive(Debug, Clone)]
pub struct RowTable {
    /// Path of the row file.
    pub path: PathBuf,
    /// Table schema.
    pub schema: Schema,
    /// Number of rows written.
    pub row_count: usize,
}

impl RowTable {
    /// Writes rows (records whose fields follow `schema` order) to a binary
    /// row file.
    pub fn write(path: impl AsRef<Path>, schema: &Schema, rows: &[Value]) -> Result<RowTable> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let codes: Vec<u8> = schema
            .fields()
            .iter()
            .map(|f| type_code(&f.data_type))
            .collect();
        let row_width: usize = codes.iter().map(|c| field_width(*c)).sum();

        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&(schema.len() as u16).to_le_bytes());
        for (field, code) in schema.fields().iter().zip(&codes) {
            header.push(*code);
            header.extend_from_slice(&(field.name.len() as u16).to_le_bytes());
            header.extend_from_slice(field.name.as_bytes());
        }
        header.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        header.extend_from_slice(&(row_width as u32).to_le_bytes());

        let mut fixed = Vec::with_capacity(rows.len() * row_width);
        let mut heap: Vec<u8> = Vec::new();
        for row in rows {
            let rec = row
                .as_record()
                .map_err(|e| StorageError::TypeMismatch(format!("row is not a record: {e}")))?;
            for (field, code) in schema.fields().iter().zip(&codes) {
                let value = rec.get(&field.name).cloned().unwrap_or(Value::Null);
                match code {
                    0 => {
                        let x = match value {
                            Value::Int(i) => i,
                            Value::Date(d) => d,
                            Value::Null => 0,
                            other => {
                                return Err(StorageError::TypeMismatch(format!(
                                    "field {} expected int, got {other:?}",
                                    field.name
                                )))
                            }
                        };
                        fixed.extend_from_slice(&x.to_le_bytes());
                    }
                    1 => {
                        let x = match value {
                            Value::Float(f) => f,
                            Value::Int(i) => i as f64,
                            Value::Null => 0.0,
                            other => {
                                return Err(StorageError::TypeMismatch(format!(
                                    "field {} expected float, got {other:?}",
                                    field.name
                                )))
                            }
                        };
                        fixed.extend_from_slice(&x.to_le_bytes());
                    }
                    2 => {
                        let x = matches!(value, Value::Bool(true));
                        fixed.push(u8::from(x));
                    }
                    _ => {
                        let s = match value {
                            Value::Str(s) => s,
                            Value::Null => String::new(),
                            other => format!("{other}"),
                        };
                        fixed.extend_from_slice(&(heap.len() as u64).to_le_bytes());
                        fixed.extend_from_slice(&(s.len() as u64).to_le_bytes());
                        heap.extend_from_slice(s.as_bytes());
                    }
                }
            }
        }

        let mut out = header;
        out.extend_from_slice(&fixed);
        out.extend_from_slice(&heap);
        fs::write(&path, out)?;
        Ok(RowTable {
            path,
            schema: schema.clone(),
            row_count: rows.len(),
        })
    }
}

/// Zero-copy reader over a binary row file buffer.
#[derive(Debug, Clone)]
pub struct RowTableReader {
    data: Bytes,
    schema: Schema,
    codes: Vec<u8>,
    offsets: Vec<usize>,
    row_width: usize,
    row_count: usize,
    fixed_start: usize,
    heap_start: usize,
}

impl RowTableReader {
    /// Parses the header of a row file held in memory.
    pub fn open(data: Bytes) -> Result<RowTableReader> {
        if data.len() < 6 || &data[0..4] != MAGIC {
            return Err(StorageError::Corrupt("bad row-table magic".into()));
        }
        let field_count = u16::from_le_bytes([data[4], data[5]]) as usize;
        let mut pos = 6;
        let mut fields = Vec::with_capacity(field_count);
        let mut codes = Vec::with_capacity(field_count);
        for _ in 0..field_count {
            if pos + 3 > data.len() {
                return Err(StorageError::Corrupt("truncated field header".into()));
            }
            let code = data[pos];
            let name_len = u16::from_le_bytes([data[pos + 1], data[pos + 2]]) as usize;
            pos += 3;
            if pos + name_len > data.len() {
                return Err(StorageError::Corrupt("truncated field name".into()));
            }
            let name = std::str::from_utf8(&data[pos..pos + name_len])
                .map_err(|_| StorageError::Corrupt("invalid field name".into()))?
                .to_string();
            pos += name_len;
            fields.push(Field::new(name, code_type(code)));
            codes.push(code);
        }
        if pos + 12 > data.len() {
            return Err(StorageError::Corrupt("truncated row header".into()));
        }
        let row_count = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap()) as usize;
        let row_width = u32::from_le_bytes(data[pos + 8..pos + 12].try_into().unwrap()) as usize;
        pos += 12;

        let mut offsets = Vec::with_capacity(field_count);
        let mut acc = 0;
        for code in &codes {
            offsets.push(acc);
            acc += field_width(*code);
        }
        if acc != row_width {
            return Err(StorageError::Corrupt(format!(
                "row width mismatch: header says {row_width}, schema implies {acc}"
            )));
        }
        let fixed_start = pos;
        let heap_start = fixed_start + row_count * row_width;
        if heap_start > data.len() {
            return Err(StorageError::Corrupt("truncated fixed region".into()));
        }
        Ok(RowTableReader {
            data,
            schema: Schema::new(fields),
            codes,
            offsets,
            row_width,
            row_count,
            fixed_start,
            heap_start,
        })
    }

    /// Opens a row file from disk through a freshly read buffer.
    pub fn open_path(path: impl AsRef<Path>) -> Result<RowTableReader> {
        let data = fs::read(path)?;
        Self::open(Bytes::from(data))
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Byte position of field `field_idx` of row `row_idx` in the buffer —
    /// the "memory position" arithmetic of the binary plug-in.
    pub fn field_position(&self, row_idx: usize, field_idx: usize) -> usize {
        self.fixed_start + row_idx * self.row_width + self.offsets[field_idx]
    }

    /// Reads an integer field directly.
    pub fn read_int(&self, row_idx: usize, field_idx: usize) -> i64 {
        let pos = self.field_position(row_idx, field_idx);
        i64::from_le_bytes(self.data[pos..pos + 8].try_into().unwrap())
    }

    /// Reads a float field directly.
    pub fn read_float(&self, row_idx: usize, field_idx: usize) -> f64 {
        let pos = self.field_position(row_idx, field_idx);
        f64::from_le_bytes(self.data[pos..pos + 8].try_into().unwrap())
    }

    /// Reads a boolean field directly.
    pub fn read_bool(&self, row_idx: usize, field_idx: usize) -> bool {
        let pos = self.field_position(row_idx, field_idx);
        self.data[pos] != 0
    }

    /// Reads a string field (resolving its heap pointer).
    pub fn read_str(&self, row_idx: usize, field_idx: usize) -> Result<&str> {
        let pos = self.field_position(row_idx, field_idx);
        let offset = u64::from_le_bytes(self.data[pos..pos + 8].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(self.data[pos + 8..pos + 16].try_into().unwrap()) as usize;
        let start = self.heap_start + offset;
        if start + len > self.data.len() {
            return Err(StorageError::Corrupt(
                "string heap pointer out of range".into(),
            ));
        }
        std::str::from_utf8(&self.data[start..start + len])
            .map_err(|_| StorageError::Corrupt("invalid utf-8 in string heap".into()))
    }

    /// Reads one field as a [`Value`] (generic/slow path).
    pub fn read_value(&self, row_idx: usize, field_idx: usize) -> Result<Value> {
        if row_idx >= self.row_count || field_idx >= self.codes.len() {
            return Err(StorageError::NotFound(format!(
                "row {row_idx} / field {field_idx} out of range"
            )));
        }
        Ok(match self.codes[field_idx] {
            0 => Value::Int(self.read_int(row_idx, field_idx)),
            1 => Value::Float(self.read_float(row_idx, field_idx)),
            2 => Value::Bool(self.read_bool(row_idx, field_idx)),
            _ => Value::Str(self.read_str(row_idx, field_idx)?.to_string()),
        })
    }

    /// Reconstructs a full row as a record value.
    pub fn read_row(&self, row_idx: usize) -> Result<Value> {
        let mut rec = proteus_algebra::Record::empty();
        for (idx, field) in self.schema.fields().iter().enumerate() {
            rec.set(field.name.clone(), self.read_value(row_idx, idx)?);
        }
        Ok(Value::Record(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::from_pairs(vec![
            ("id", DataType::Int),
            ("price", DataType::Float),
            ("active", DataType::Bool),
            ("name", DataType::String),
        ])
    }

    fn sample_rows() -> Vec<Value> {
        (0..5)
            .map(|i| {
                Value::record(vec![
                    ("id", Value::Int(i)),
                    ("price", Value::Float(i as f64 * 1.5)),
                    ("active", Value::Bool(i % 2 == 0)),
                    ("name", Value::Str(format!("row-{i}"))),
                ])
            })
            .collect()
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("proteus_row_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_and_read_round_trip() {
        let path = temp_path("roundtrip.prow");
        let schema = sample_schema();
        let rows = sample_rows();
        let table = RowTable::write(&path, &schema, &rows).unwrap();
        assert_eq!(table.row_count, 5);

        let reader = RowTableReader::open_path(&path).unwrap();
        assert_eq!(reader.row_count(), 5);
        assert_eq!(
            reader.schema().names(),
            vec!["id", "price", "active", "name"]
        );
        for (i, expected) in rows.iter().enumerate() {
            assert_eq!(&reader.read_row(i).unwrap(), expected);
        }
    }

    #[test]
    fn direct_typed_accessors() {
        let path = temp_path("typed.prow");
        RowTable::write(&path, &sample_schema(), &sample_rows()).unwrap();
        let reader = RowTableReader::open_path(&path).unwrap();
        assert_eq!(reader.read_int(3, 0), 3);
        assert_eq!(reader.read_float(2, 1), 3.0);
        assert!(reader.read_bool(4, 2));
        assert_eq!(reader.read_str(1, 3).unwrap(), "row-1");
    }

    #[test]
    fn field_positions_are_fixed_stride() {
        let path = temp_path("stride.prow");
        RowTable::write(&path, &sample_schema(), &sample_rows()).unwrap();
        let reader = RowTableReader::open_path(&path).unwrap();
        let stride = reader.field_position(1, 0) - reader.field_position(0, 0);
        assert_eq!(stride, 8 + 8 + 1 + 16);
    }

    #[test]
    fn out_of_range_access_is_error() {
        let path = temp_path("range.prow");
        RowTable::write(&path, &sample_schema(), &sample_rows()).unwrap();
        let reader = RowTableReader::open_path(&path).unwrap();
        assert!(reader.read_value(99, 0).is_err());
        assert!(reader.read_value(0, 99).is_err());
    }

    #[test]
    fn corrupt_file_is_rejected() {
        assert!(RowTableReader::open(Bytes::from_static(b"garbage")).is_err());
        let path = temp_path("trunc.prow");
        RowTable::write(&path, &sample_schema(), &sample_rows()).unwrap();
        let mut data = fs::read(&path).unwrap();
        data.truncate(data.len() / 2);
        assert!(RowTableReader::open(Bytes::from(data)).is_err());
    }

    #[test]
    fn missing_fields_become_defaults() {
        let path = temp_path("missing.prow");
        let schema = Schema::from_pairs(vec![("a", DataType::Int), ("b", DataType::String)]);
        let rows = vec![Value::record(vec![("a", Value::Int(7))])];
        RowTable::write(&path, &schema, &rows).unwrap();
        let reader = RowTableReader::open_path(&path).unwrap();
        assert_eq!(reader.read_int(0, 0), 7);
        assert_eq!(reader.read_str(0, 1).unwrap(), "");
    }

    #[test]
    fn non_record_row_is_rejected() {
        let path = temp_path("nonrecord.prow");
        let schema = Schema::from_pairs(vec![("a", DataType::Int)]);
        assert!(RowTable::write(&path, &schema, &[Value::Int(1)]).is_err());
    }
}
