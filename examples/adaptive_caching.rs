//! Demonstrates §6: caches built as a side-effect of execution speed up later
//! queries over verbose formats, cache matching rewrites plans, and updates
//! invalidate affected caches.
//!
//! Run with: `cargo run --example adaptive_caching --release`

use std::time::Instant;

use proteus::datagen::tpch::{TpchGenerator, TpchScale};
use proteus::datagen::writers;
use proteus::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("proteus_example_caching");
    std::fs::create_dir_all(&dir).unwrap();
    let mut generator = TpchGenerator::new(TpchScale::from_env(0.5));
    let (_, lineitems) = generator.generate();
    writers::write_json(dir.join("lineitem.json"), &lineitems, true).unwrap();

    let query = "SELECT COUNT(*), MAX(l_quantity), SUM(l_extendedprice) \
                 FROM lineitem WHERE l_orderkey < 200";

    // Caching disabled: every query pays the JSON navigation cost.
    let cold = QueryEngine::new(EngineConfig::without_caching());
    cold.register_json("lineitem", dir.join("lineitem.json"))
        .unwrap();
    let start = Instant::now();
    let baseline = cold.sql(query).unwrap();
    let baseline_time = start.elapsed();

    // Caching enabled: the first query populates binary caches of the numeric
    // fields it touches; the second is served from them.
    let adaptive = QueryEngine::with_defaults();
    adaptive
        .register_json("lineitem", dir.join("lineitem.json"))
        .unwrap();
    let start = Instant::now();
    let first = adaptive.sql(query).unwrap();
    let first_time = start.elapsed();
    let start = Instant::now();
    let second = adaptive.sql(query).unwrap();
    let second_time = start.elapsed();

    assert_eq!(baseline.rows, second.rows);
    println!("result: {}", second.rows[0]);
    println!(
        "caching disabled:          {:.2} ms",
        baseline_time.as_secs_f64() * 1e3
    );
    println!(
        "caching enabled, 1st run:  {:.2} ms ({} values cached)",
        first_time.as_secs_f64() * 1e3,
        first.metrics.cached_values
    );
    println!(
        "caching enabled, 2nd run:  {:.2} ms (speed-up {:.1}x)",
        second_time.as_secs_f64() * 1e3,
        baseline_time.as_secs_f64() / second_time.as_secs_f64().max(1e-9)
    );
    println!("\naccess paths of the 2nd run:");
    for path in &second.access_paths {
        println!("  {path}");
    }
    println!("\ncache store: {:?}", adaptive.cache_stats());

    // Updates drop the affected caches; the next query rebuilds them.
    let dropped = adaptive.notify_update("lineitem");
    println!("\nafter an append to lineitem: {dropped} cache(s) invalidated");
    let rebuilt = adaptive.sql(query).unwrap();
    assert_eq!(rebuilt.rows, second.rows);
    println!("rebuilt cache store: {:?}", adaptive.cache_stats());
}
