//! Quickstart: register a CSV, a JSON and a binary dataset, run SQL and
//! comprehension queries over them — including one query joining all three —
//! and inspect the generated engine.
//!
//! Run with: `cargo run --example quickstart`

use proteus::datagen::tpch::{TpchGenerator, TpchScale};
use proteus::datagen::writers;
use proteus::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("proteus_example_quickstart");
    std::fs::create_dir_all(&dir).unwrap();

    // Generate a small TPC-H subset and write it in three different formats:
    // lineitem as CSV, orders as JSON, and lineitem again as binary columns.
    let mut generator = TpchGenerator::new(TpchScale(0.05));
    let (orders, lineitems) = generator.generate();
    writers::write_csv(
        dir.join("lineitem.csv"),
        &lineitems,
        &TpchGenerator::lineitem_schema(),
        '|',
    )
    .unwrap();
    writers::write_json(dir.join("orders.json"), &orders, true).unwrap();
    writers::write_column_table(
        dir.join("lineitem_cols"),
        &lineitems,
        &TpchGenerator::lineitem_schema(),
    )
    .unwrap();

    // One engine, three heterogeneous datasets, no loading step.
    let engine = QueryEngine::with_defaults();
    engine
        .register_csv(
            "lineitem_csv",
            dir.join("lineitem.csv"),
            TpchGenerator::lineitem_schema(),
            CsvOptions::default(),
        )
        .unwrap();
    engine
        .register_json("orders", dir.join("orders.json"))
        .unwrap();
    engine
        .register_columns("lineitem", dir.join("lineitem_cols"))
        .unwrap();

    // SQL over the binary columns.
    let result = engine
        .sql("SELECT COUNT(*), MAX(l_quantity) FROM lineitem WHERE l_orderkey < 40")
        .unwrap();
    println!("binary lineitem: {}", result.rows[0]);
    println!("  metrics: {}", result.metrics);

    // SQL over the CSV file (same data, different format, same interface).
    let result = engine
        .sql("SELECT COUNT(*), MAX(l_quantity) FROM lineitem_csv WHERE l_orderkey < 40")
        .unwrap();
    println!("csv lineitem:    {}", result.rows[0]);

    // A cross-format join: JSON orders joined with binary lineitems.
    let result = engine
        .sql(
            "SELECT COUNT(*), MAX(o_totalprice) FROM orders o JOIN lineitem l \
             ON o_orderkey = l_orderkey WHERE l_orderkey < 40",
        )
        .unwrap();
    println!("json ⋈ binary:   {}", result.rows[0]);

    // The engine generated for the last query (Figure 3 analogue).
    println!("\ngenerated engine for the join query:\n{}", result.ir);

    // EXPLAIN output: optimized plan + pseudo-IR.
    println!(
        "\n{}",
        engine
            .explain_sql("SELECT COUNT(*) FROM lineitem WHERE l_orderkey < 5")
            .unwrap()
    );

    println!("cache state: {:?}", engine.cache_stats());

    // Morsel-driven parallelism: the same pipelines fan morsels of ~1024
    // tuples across a worker pool. `parallelism: 0` = one worker per CPU;
    // per-thread partial aggregates merge under the monoid's ⊕ at the end.
    let parallel = QueryEngine::new(EngineConfig::parallel());
    parallel
        .register_columns("lineitem", dir.join("lineitem_cols"))
        .unwrap();
    let result = parallel
        .sql("SELECT COUNT(*), MAX(l_quantity) FROM lineitem WHERE l_orderkey < 40")
        .unwrap();
    println!(
        "\nmorsel-parallel lineitem: {} (threads={}, morsels={}, per-tuple allocs={})",
        result.rows[0],
        result.metrics.threads_used,
        result.metrics.morsels,
        result.metrics.binding_allocs
    );
}
