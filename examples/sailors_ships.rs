//! The paper's running example (Example 3.1 / Figure 1): sailors with nested
//! children arrays joined with ships through their personnel lists, expressed
//! in the comprehension syntax and executed over JSON files.
//!
//! Run with: `cargo run --example sailors_ships`

use proteus::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("proteus_example_sailors");
    std::fs::create_dir_all(&dir).unwrap();

    std::fs::write(
        dir.join("sailors.json"),
        r#"{"id": 1, "name": "keller", "children": [{"name": "ann", "age": 20}, {"name": "bob", "age": 10}]}
{"id": 2, "name": "silver", "children": [{"name": "eve", "age": 30}]}
{"id": 3, "name": "flint", "children": []}
"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("ships.json"),
        r#"{"name": "Calypso", "personnel": [1, 3]}
{"name": "Nautilus", "personnel": [2]}
"#,
    )
    .unwrap();

    let engine = QueryEngine::with_defaults();
    engine
        .register_json("Sailor", dir.join("sailors.json"))
        .unwrap();
    engine
        .register_json("Ship", dir.join("ships.json"))
        .unwrap();

    // Example 3.1: "For each Sailor, return his id, the name of the Ship on
    // which he works, and the names of his adult children."
    let query = "for { s1 <- Sailor, c <- s1.children, s2 <- Ship, \
                 p <- s2.personnel, s1.id = p, c.age > 18 } \
                 yield bag (s1.id, s2.name, c.name)";
    let result = engine.comprehension(query).unwrap();

    println!("query: {query}\n");
    println!(
        "optimized plan:\n{}",
        proteus::algebra::pretty::explain(&result.plan)
    );
    println!("results:");
    for row in result.flattened_rows() {
        println!("  {row}");
    }

    // The same data also answers plain aggregations.
    let adults = engine
        .comprehension("for { s <- Sailor, c <- s.children, c.age > 18 } yield count")
        .unwrap();
    println!("\nadult children across all sailors: {}", adults.rows[0]);

    let oldest = engine
        .comprehension("for { s <- Sailor, c <- s.children } yield max c.age")
        .unwrap();
    println!("oldest child: {}", oldest.rows[0]);
}
