//! A condensed version of the §7.2 Symantec scenario: spam-email JSON
//! objects, a CSV classification file and a binary history table queried
//! together through one engine, including a three-way cross-format join.
//!
//! Run with: `cargo run --example spam_analysis`

use proteus::datagen::symantec::{SymantecGenerator, SymantecScale};
use proteus::datagen::writers;
use proteus::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("proteus_example_spam");
    std::fs::create_dir_all(&dir).unwrap();

    let mut generator = SymantecGenerator::new(SymantecScale {
        spam_objects: 400,
        classification_rows: 2_000,
        history_rows: 3_000,
    });
    let spam = generator.spam_objects();
    let classifications = generator.classifications();
    let history = generator.history();

    writers::write_json(dir.join("spam.json"), &spam, true).unwrap();
    writers::write_csv(
        dir.join("classifications.csv"),
        &classifications,
        &SymantecGenerator::classification_schema(),
        '|',
    )
    .unwrap();
    writers::write_column_table(
        dir.join("history"),
        &history,
        &SymantecGenerator::history_schema(),
    )
    .unwrap();

    let engine = QueryEngine::with_defaults();
    engine.register_json("spam", dir.join("spam.json")).unwrap();
    engine
        .register_csv(
            "classifications",
            dir.join("classifications.csv"),
            SymantecGenerator::classification_schema(),
            CsvOptions::default(),
        )
        .unwrap();
    engine
        .register_columns("history", dir.join("history"))
        .unwrap();

    // How many spam mails per origin country? (JSON only, nested field.)
    let by_country = engine
        .comprehension("for { s <- spam } yield bag s.origin.country")
        .unwrap();
    let countries = by_country.flattened_rows();
    println!("spam mails observed: {}", countries.len());

    // High-confidence phishing labels inside the nested class arrays.
    let phishing = engine
        .comprehension("for { s <- spam, c <- s.classes, c.confidence > 0.8 } yield count")
        .unwrap();
    println!("high-confidence classifications: {}", phishing.rows[0]);

    // CSV + JSON join: average score of mails written in Russian.
    let result = engine
        .sql(
            "SELECT COUNT(*), AVG(score) FROM classifications c JOIN spam s \
             ON c.mail_id = s.mail_id WHERE s.lang = 'ru'",
        )
        .unwrap();
    println!("russian-language mails (CSV ⋈ JSON): {}", result.rows[0]);

    // All three silos: history ⋈ classifications ⋈ spam.
    let result = engine
        .sql(
            "SELECT COUNT(*), MAX(total_score) FROM history h \
             JOIN classifications c ON h.mail_id = c.mail_id \
             JOIN spam s ON c.mail_id = s.mail_id \
             WHERE score < 20",
        )
        .unwrap();
    println!("three-way cross-format join: {}", result.rows[0]);
    println!("\naccess paths chosen by the plug-ins:");
    for path in &result.access_paths {
        println!("  {path}");
    }
    println!(
        "\ncaches built as a side effect: {:?}",
        engine.cache_stats()
    );
}
