//! The vectorized execution tiers, made visible: runs the same queries on
//! the kernel engine and the closure engine and prints the
//! `ExecutionMetrics` counters that show which tier did the work
//! (`kernel_rows` vs `fallback_rows`, `agg_kernel_rows`,
//! `join_kernel_rows`, `binding_allocs`). The companion prose is
//! `ARCHITECTURE.md` at the repository root — this example is its
//! data-flow diagram running for real.
//!
//! Run with: `cargo run --release --example vectorized_pipeline`

use std::sync::Arc;

use proteus::plugins::binary::ColumnPlugin;
use proteus::prelude::*;
use proteus::storage::ColumnData;

fn main() {
    let rows: i64 = 200_000;

    // A small in-memory binary-column table (the format with the cheapest
    // typed fills: morsels are direct slice appends out of these vectors).
    let plugin = ColumnPlugin::from_pairs(
        "lineitem",
        vec![
            (
                "l_orderkey".to_string(),
                ColumnData::Int((0..rows).map(|i| i % (rows / 4)).collect()),
            ),
            (
                "l_quantity".to_string(),
                ColumnData::Float((0..rows).map(|i| (i % 50) as f64).collect()),
            ),
            (
                "l_comment".to_string(),
                ColumnData::Str(
                    (0..rows)
                        .map(|i| {
                            ["deposits", "furiously", "ironic", "packages"][i as usize % 4]
                                .to_string()
                        })
                        .collect(),
                ),
            ),
        ],
    )
    .expect("in-memory columns");

    // Two engines over the same data: vectorized kernels on (the default)
    // and off (every predicate/aggregate runs as a per-tuple closure).
    let kernels = QueryEngine::new(EngineConfig::without_caching());
    let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
    kernels.register_plugin(Arc::new(plugin.clone()));
    closures.register_plugin(Arc::new(plugin));

    let queries = [
        (
            "fully kernel-eligible: mask filter + columnar aggregate",
            "SELECT COUNT(*), SUM(l_quantity) FROM lineitem \
             WHERE l_orderkey < 10000 AND l_quantity < 45.0",
        ),
        (
            "string kernel (pooled compare) + group-by with typed keys",
            "SELECT l_comment, COUNT(*) FROM lineitem \
             WHERE l_comment <> 'ironic' GROUP BY l_comment",
        ),
        (
            "mixed: the modulo conjunct falls back to a closure residual",
            "SELECT COUNT(*) FROM lineitem \
             WHERE l_orderkey < 10000 AND l_orderkey % 3 = 0",
        ),
    ];

    for (label, sql) in queries {
        let fast = kernels.sql(sql).expect("kernel engine");
        let slow = closures.sql(sql).expect("closure engine");
        assert_eq!(fast.rows, slow.rows, "tiers must agree bit for bit");

        println!("-- {label}");
        println!("   {sql}");
        for row in fast.rows.iter().take(3) {
            println!("   => {row}");
        }
        let m = &fast.metrics;
        println!(
            "   kernels : predicates kernel={} fallback={} | aggs kernel={} fallback={} | allocs={}",
            m.kernel_rows, m.fallback_rows, m.agg_kernel_rows, m.agg_fallback_rows, m.binding_allocs
        );
        let m = &slow.metrics;
        println!(
            "   closures: predicates kernel={} fallback={} | aggs kernel={} fallback={} | allocs={}",
            m.kernel_rows, m.fallback_rows, m.agg_kernel_rows, m.agg_fallback_rows, m.binding_allocs
        );
        println!();
    }

    println!("full metrics of the last kernel run:");
    let last = kernels.sql(queries[2].1).expect("kernel engine");
    println!("  {}", last.metrics);
    println!();
    println!(
        "reading the counters: kernel_rows are rows whose selection predicates \
         were evaluated by the packed-bitmask kernels; fallback_rows went through \
         compiled per-tuple closures (here: the `% 3` residual conjunct, applied \
         only after the kernel mask). agg_kernel_rows counts (row x output-spec) \
         folds done columnwise. binding_allocs = 0 means the steady-state scan \
         path never heap-allocated per tuple."
    );
}
