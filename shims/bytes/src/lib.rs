//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, API-compatible subset of `bytes::Bytes`: a cheaply cloneable,
//! immutable, shared byte buffer. Only what the workspace actually calls is
//! implemented; semantics match the real crate for that subset.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static byte slice (no copy in the real crate; one copy here,
    /// which is fine for the small static inputs the tests use).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the range `[start, end)` into a new buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: Arc::from(&self.data[range]),
        }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(data.into_boxed_slice()),
        }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Bytes {
        Bytes::from(data.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Bytes {
        Bytes::from(data.as_bytes().to_vec())
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::from("hello".to_string());
        assert_eq!(b.len(), 5);
        assert_eq!(&b[1..3], b"el");
        assert_eq!(b.as_ref(), b"hello");
        let c = b.clone();
        assert_eq!(c.slice(0..2).as_slice(), b"he");
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
        assert!(Bytes::new().is_empty());
    }
}
