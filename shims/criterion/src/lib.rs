//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::default()` with
//! `sample_size`/`measurement_time`/`warm_up_time`, `bench_function`,
//! `Bencher::iter`) backed by a plain wall-clock runner: warm up, collect
//! per-sample means, report min/mean/max. No statistics beyond that.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench configuration + registry, mirroring criterion's entry type.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for measurement.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints a criterion-like summary line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the body until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut bencher = Bencher {
            per_iter: Duration::ZERO,
            iters: 0,
        };
        while Instant::now() < warm_deadline {
            f(&mut bencher);
        }

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            f(&mut bencher);
            samples.push(bencher.per_iter);
            if Instant::now() > deadline {
                break;
            }
        }
        samples.sort_unstable();
        let min = samples.first().copied().unwrap_or_default();
        let max = samples.last().copied().unwrap_or_default();
        let mean = samples
            .iter()
            .sum::<Duration>()
            .checked_div(samples.len().max(1) as u32)
            .unwrap_or_default();
        println!(
            "{name:<45} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Timing helper passed to each benchmark body.
pub struct Bencher {
    per_iter: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `body`, amortizing over an adaptive batch of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Pick a batch size targeting ~10ms per sample so fast bodies are
        // amortized and slow bodies run once.
        let probe_start = Instant::now();
        black_box(body());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(10).as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;

        let start = Instant::now();
        for _ in 0..batch {
            black_box(body());
        }
        let elapsed = start.elapsed();
        self.per_iter = elapsed / batch as u32;
        self.iters += batch;
    }
}

/// Mirrors criterion's group macro: both the `name/config/targets` form and
/// the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors criterion's main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
