//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned std lock
//! is recovered rather than propagated, matching parking_lot's behavior of
//! not poisoning on panic.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
