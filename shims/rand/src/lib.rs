//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Implements exactly what the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, `Rng::gen_bool`, and
//! `SliceRandom::shuffle` — on top of a SplitMix64 generator. Output is fully
//! deterministic per seed (the data generators rely on that), though the
//! streams differ from the real crate's.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of rand's `Rng` trait the workspace uses.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    /// Uniform float in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range a uniform value of type `T` can be drawn from. Parameterized by
/// the output type (like the real crate) so integer literals in ranges infer
/// from the expected result type.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range, like rand.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types a uniform sample can be drawn for (rand's `SampleUniform` analogue).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

// Single blanket impls tying the output type to the range's element type:
// this is what lets `gen_range(0..10)` infer i64 from the use site and
// `gen_range(0.0..1.0)` fall back to f64.
impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling; bias is negligible at 64 bits for the
    // small spans the generators use.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                let span = (end as i128 - start as i128) as u64;
                (start as i128 + uniform_u64(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: Rng + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                start + (end - start) * rng.next_f64() as $t
            }

            fn sample_inclusive<R: Rng + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                Self::sample_half_open(start, end, rng)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Standard generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling of slices.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.gen_range(3i64..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(1..=7);
            assert!((1..=7).contains(&j));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let f = rng.gen_range(900.0..1100.0);
            assert!((900.0..1100.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.6)).count();
        assert!((5_500..6_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<i32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
