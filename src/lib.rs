//! # proteus
//!
//! Umbrella crate of the Proteus reproduction (*Fast Queries Over
//! Heterogeneous Data Through Engine Customization*, VLDB 2016). It
//! re-exports the public API of the workspace crates so applications can
//! depend on a single crate.
//!
//! **Architecture:** `ARCHITECTURE.md` at the repository root explains the
//! four execution tiers (closure interpreter → morsel pipelines → typed
//! bitmask kernels → typed sinks/joins), the kernel ≡ closure
//! bit-exactness contract, and the per-operator eligibility rules;
//! `BENCHMARKS.md` maps every `BENCH_*.json` report to its paper figure.
//! `cargo run --release --example vectorized_pipeline` shows the tiers
//! engaging on live queries.
//!
//! ```no_run
//! use proteus::prelude::*;
//!
//! let engine = QueryEngine::with_defaults();
//! engine.register_json("sailors", "sailors.json").unwrap();
//! let result = engine
//!     .comprehension("for { s <- sailors, c <- s.children, c.age > 18 } yield count")
//!     .unwrap();
//! println!("{}", result.rows[0]);
//! ```

pub use proteus_algebra as algebra;
pub use proteus_baselines as baselines;
pub use proteus_core as core;
pub use proteus_datagen as datagen;
pub use proteus_optimizer as optimizer;
pub use proteus_plugins as plugins;
pub use proteus_service as service;
pub use proteus_storage as storage;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use proteus_algebra::{
        DataType, Expr, JoinKind, LogicalPlan, Monoid, Path, ReduceSpec, Schema, Value,
    };
    pub use proteus_core::{EngineConfig, ExecutionMetrics, NumericMode, QueryEngine, QueryResult};
    pub use proteus_plugins::csv::CsvOptions;
    pub use proteus_plugins::{InputPlugin, PluginRegistry};
    pub use proteus_storage::{CacheStore, MemoryManager, SourceFormat};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_engine_and_algebra() {
        let engine = QueryEngine::new(EngineConfig::without_caching());
        assert!(engine.sql("SELECT COUNT(*) FROM missing").is_err());
        let plan = LogicalPlan::scan("t", "t", Schema::empty());
        assert_eq!(plan.name(), "Scan");
    }
}
