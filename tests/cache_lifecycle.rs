//! Cache-lifecycle chaos/property suite.
//!
//! Pins the adaptive cache's whole life: budgeted admission with
//! cost/benefit eviction, background builds racing queries and
//! invalidations, disk spill/reload and snapshot/warm-restart persistence,
//! and concurrent readers during rebuilds. The contracts under test:
//!
//! * `CacheStats::bytes` never exceeds the arena budget, under any
//!   interleaving of inserts, lookups, invalidations and clears;
//! * a lookup either returns the exact bytes that were inserted (possibly
//!   reloaded from spill) or a clean miss — never a torn or stale entry;
//! * eviction order is a deterministic function of (build cost, hits,
//!   size, last use), so two stores fed the same history agree;
//! * background builds honor cancellation and the revision fence: there is
//!   no such thing as a half-built or stale-registered cache;
//! * persistence round-trips bit-exactly and rejects corrupt/truncated
//!   files gracefully (a count in the report, never an error or a panic).
//!
//! Fault configuration is process-global, so the fault-driven tests
//! serialize on one mutex and disarm all sites on scope exit.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use proteus::core::EngineError;
use proteus::datagen::writers;
use proteus::plugins::fault::{self, FaultAction};
use proteus::prelude::*;
use proteus::storage::cache::make_entry;
use proteus::storage::{persist, ColumnData};

// -- serialization of fault-driven tests ----------------------------------

struct FaultScope {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        fault::clear();
    }
}

fn fault_scope() -> FaultScope {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::clear();
    FaultScope { _guard: guard }
}

// -- fixtures -------------------------------------------------------------

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("proteus_cache_lifecycle")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema_ab() -> Schema {
    Schema::from_pairs(vec![("a", DataType::Int), ("b", DataType::Int)])
}

fn rows_ab(n: i64) -> Vec<Value> {
    (0..n)
        .map(|i| Value::record(vec![("a", Value::Int(i)), ("b", Value::Int(i * 3 % 97))]))
        .collect()
}

/// Registers `t` as a CSV of `n` rows — a verbose source, so its numeric
/// fields are cache candidates under the paper's policy.
fn register_csv(engine: &QueryEngine, dir: &std::path::Path, table: &str, n: i64) {
    let path = dir.join(format!("{table}.csv"));
    writers::write_csv(&path, &rows_ab(n), &schema_ab(), '|').unwrap();
    engine
        .register_csv(table, &path, schema_ab(), CsvOptions::default())
        .unwrap();
}

/// A deterministic LCG (same constants as `rand`'s shim idiom): the
/// property tests must replay identically across runs and stores.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// A synthetic entry with deterministic contents derived from (name, len):
/// lookups can verify bit-exactness against a recomputation.
fn synth_entry(name: &str, dataset: &str, len: usize, format: SourceFormat) -> CacheEntryFixture {
    let values: Vec<i64> = (0..len)
        .map(|i| (i as i64).wrapping_mul(31).wrapping_add(name.len() as i64))
        .collect();
    let entry = make_entry(
        name,
        format!("sig::{name}"),
        dataset,
        format,
        vec![("v".to_string(), ColumnData::Int(values.clone()))],
        (0..len as u64).collect(),
    );
    CacheEntryFixture { entry, values }
}

struct CacheEntryFixture {
    entry: proteus::storage::CacheEntry,
    values: Vec<i64>,
}

// -- property: budget + bit-exact-or-miss under interleavings -------------

#[test]
fn property_interleavings_keep_bytes_under_budget_and_lookups_exact() {
    const BUDGET: usize = 8 * 1024;
    for seed in 0..16u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) + 1);
        let dir = scratch(&format!("prop_{seed}"));
        let store = CacheStore::new(MemoryManager::with_budget(BUDGET));
        store.set_spill_dir(&dir).unwrap();
        // Model: the exact contents last inserted under each name.
        let mut model: std::collections::HashMap<String, Vec<i64>> =
            std::collections::HashMap::new();
        for _step in 0..400 {
            match rng.next() % 12 {
                0..=5 => {
                    let id = rng.next() % 8;
                    let name = format!("e{id}");
                    let dataset = format!("ds{}", id % 3);
                    let len = (rng.next() % 200 + 1) as usize;
                    let format = match rng.next() % 3 {
                        0 => SourceFormat::Binary,
                        1 => SourceFormat::Csv,
                        _ => SourceFormat::Json,
                    };
                    let fx = synth_entry(&name, &dataset, len, format);
                    if store.insert(fx.entry).is_ok() {
                        model.insert(name, fx.values);
                    } else {
                        // Refused (cannot fit even alone): not present.
                        model.remove(&name);
                    }
                }
                6..=8 => {
                    let id = rng.next() % 8;
                    let name = format!("e{id}");
                    if let Some(entry) = store.lookup_by_signature(&format!("sig::{name}")) {
                        // Hit ⇒ bit-exact against the model (never torn,
                        // never a stale survivor of invalidate/clear).
                        let expected = model.get(&name).unwrap_or_else(|| {
                            panic!("lookup returned evicted-and-dropped {name}")
                        });
                        match entry.column("v") {
                            Some(ColumnData::Int(got)) => assert_eq!(got, expected),
                            other => panic!("wrong column shape: {other:?}"),
                        }
                    }
                    // Miss is always acceptable: evicted cold, or dropped.
                }
                9 => {
                    let ds = format!("ds{}", rng.next() % 3);
                    store.invalidate_dataset(&ds);
                    model.retain(|name, _| {
                        let id: u64 = name[1..].parse().unwrap();
                        format!("ds{}", id % 3) != ds
                    });
                }
                10 => {
                    // Hits shape future evictions; exercise them mid-stream.
                    let name = format!("e{}", rng.next() % 8);
                    store.record_hit(&name);
                }
                _ => {
                    if rng.next().is_multiple_of(4) {
                        store.clear();
                        model.clear();
                    }
                }
            }
            let stats = store.stats();
            assert!(
                stats.bytes <= BUDGET,
                "seed {seed}: bytes {} exceeded budget {BUDGET}",
                stats.bytes
            );
        }
    }
}

#[test]
fn eviction_order_is_deterministic_across_stores() {
    const BUDGET: usize = 6 * 1024;
    let build = |spill: &std::path::Path| {
        let store = CacheStore::new(MemoryManager::with_budget(BUDGET));
        store.set_spill_dir(spill).unwrap();
        // Fixed hit history: entries get `id` hits each before the
        // overflow inserts force evictions.
        for id in 0..6u64 {
            let fx = synth_entry(
                &format!("d{id}"),
                "ds",
                120,
                if id % 2 == 0 {
                    SourceFormat::Csv
                } else {
                    SourceFormat::Json
                },
            );
            store.insert(fx.entry).unwrap();
            for _ in 0..id {
                store.record_hit(&format!("d{id}"));
            }
        }
        for id in 6..10u64 {
            let fx = synth_entry(&format!("d{id}"), "ds", 200, SourceFormat::Json);
            store.insert(fx.entry).unwrap();
        }
        let mut names = store.names();
        names.sort();
        (names, store.stats())
    };
    let (names_a, stats_a) = build(&scratch("det_a"));
    let (names_b, stats_b) = build(&scratch("det_b"));
    assert_eq!(names_a, names_b);
    assert_eq!(stats_a.evictions, stats_b.evictions);
    assert!(stats_a.evictions > 0, "fixture never overflowed the budget");
}

#[test]
fn cost_benefit_eviction_keeps_hot_expensive_entries() {
    let store = CacheStore::new(MemoryManager::with_budget(6 * 1024));
    // Hot JSON-derived entry: expensive to rebuild, frequently hit.
    let hot = synth_entry("hot", "ds", 150, SourceFormat::Json);
    store.insert(hot.entry).unwrap();
    for _ in 0..50 {
        store.record_hit("hot");
    }
    // Cold binary-derived entries: cheap to rebuild, never hit.
    for i in 0..8 {
        let cold = synth_entry(&format!("cold{i}"), "ds", 150, SourceFormat::Binary);
        store.insert(cold.entry).unwrap();
    }
    assert!(
        store.get("hot").is_some(),
        "hot expensive entry was evicted ahead of cold cheap ones"
    );
    assert!(store.stats().evictions > 0);
}

// -- background builds ----------------------------------------------------

#[test]
fn background_build_completes_and_serves_later_queries() {
    let dir = scratch("bg_build");
    let engine = QueryEngine::new(EngineConfig::default().with_background_cache_builds(true));
    register_csv(&engine, &dir, "t", 3000);
    let q = "SELECT COUNT(*), MAX(b) FROM t WHERE a >= 0";
    let first = engine.sql(q).unwrap();
    // The foreground query did not build inline.
    assert_eq!(first.metrics.cached_values, 0);
    assert_eq!(engine.wait_for_cache_builds(Duration::from_secs(10)), 0);
    let stats = engine.cache_stats();
    assert!(stats.background_builds >= 1, "stats: {stats:?}");
    assert!(stats.entries >= 1);
    // The cache the background build registered is bit-exact: a query
    // served from it agrees with the uncached run.
    let second = engine.sql(q).unwrap();
    assert_eq!(first.scalar("count_0"), second.scalar("count_0"));
    assert_eq!(first.scalar("max_1"), second.scalar("max_1"));
    assert!(second
        .access_paths
        .iter()
        .any(|p| p.contains("cache") || p.contains("fully served")));
}

#[test]
fn query_racing_a_background_build_sees_clean_miss_or_finished_cache() {
    let dir = scratch("bg_race");
    let engine = QueryEngine::new(EngineConfig::default().with_background_cache_builds(true));
    register_csv(&engine, &dir, "t", 4000);
    let q = "SELECT COUNT(*), MAX(b) FROM t WHERE a >= 0";
    let baseline = engine.sql(q).unwrap();
    // Immediately re-query while the build may be anywhere in its life.
    for _ in 0..10 {
        let racing = engine.sql(q).unwrap();
        assert_eq!(baseline.scalar("count_0"), racing.scalar("count_0"));
        assert_eq!(baseline.scalar("max_1"), racing.scalar("max_1"));
    }
    assert_eq!(engine.wait_for_cache_builds(Duration::from_secs(10)), 0);
    let after = engine.sql(q).unwrap();
    assert_eq!(baseline.scalar("count_0"), after.scalar("count_0"));
}

#[test]
fn invalidation_cancels_in_flight_build_and_engine_stays_usable() {
    let _scope = fault_scope();
    let dir = scratch("bg_cancel");
    let engine = QueryEngine::new(EngineConfig::default().with_background_cache_builds(true));
    register_csv(&engine, &dir, "t", 50_000);
    // Slow every build chunk down so the invalidation lands mid-build.
    fault::configure("cache.build", FaultAction::SleepMs(40));
    let q = "SELECT COUNT(*) FROM t WHERE a >= 0";
    engine.sql(q).unwrap();
    // The build is in flight (or about to be); invalidate the dataset.
    engine.notify_update("t");
    assert_eq!(engine.wait_for_cache_builds(Duration::from_secs(10)), 0);
    // No half-built or stale cache registered.
    assert!(engine.caches().caches_for_dataset("t").is_empty());
    fault::clear();
    // Engine is fully reusable: the next query re-offers the build and it
    // completes normally.
    engine.sql(q).unwrap();
    assert_eq!(engine.wait_for_cache_builds(Duration::from_secs(10)), 0);
    assert!(!engine.caches().caches_for_dataset("t").is_empty());
}

#[test]
fn build_fault_site_aborts_build_without_registering() {
    let _scope = fault_scope();
    let dir = scratch("bg_fault");
    let engine = QueryEngine::new(EngineConfig::default().with_background_cache_builds(true));
    register_csv(&engine, &dir, "t", 3000);
    fault::configure("cache.build", FaultAction::Error);
    let q = "SELECT COUNT(*) FROM t WHERE a >= 0";
    let r1 = engine.sql(q).unwrap();
    assert_eq!(engine.wait_for_cache_builds(Duration::from_secs(10)), 0);
    assert_eq!(engine.cache_stats().background_builds, 0);
    assert_eq!(engine.cache_stats().entries, 0);
    fault::clear();
    // Next query re-offers; the build now completes.
    let r2 = engine.sql(q).unwrap();
    assert_eq!(r1.scalar("count_0"), r2.scalar("count_0"));
    assert_eq!(engine.wait_for_cache_builds(Duration::from_secs(10)), 0);
    assert!(engine.cache_stats().background_builds >= 1);
}

#[test]
fn build_panic_is_contained_and_engine_survives() {
    let _scope = fault_scope();
    let dir = scratch("bg_panic");
    let engine = QueryEngine::new(EngineConfig::default().with_background_cache_builds(true));
    register_csv(&engine, &dir, "t", 3000);
    fault::configure("cache.build", FaultAction::Panic);
    let q = "SELECT COUNT(*) FROM t WHERE a >= 0";
    engine.sql(q).unwrap();
    assert_eq!(engine.wait_for_cache_builds(Duration::from_secs(10)), 0);
    assert_eq!(engine.cache_stats().entries, 0);
    fault::clear();
    // The pool worker that absorbed the panic still serves queries.
    let again = engine.sql(q).unwrap();
    assert_eq!(again.scalar("count_0"), Some(Value::Int(3000)));
}

// -- spill / load fault sites ---------------------------------------------

#[test]
fn spill_and_load_fault_sites_degrade_to_discard_and_miss() {
    let _scope = fault_scope();
    let dir = scratch("spill_faults");
    let store = CacheStore::new(MemoryManager::with_budget(4 * 1024));
    store.set_fault_probe(Arc::new(fault::check));
    store.set_spill_dir(&dir).unwrap();

    // Failing the spill site means hot evictions discard instead.
    fault::configure("cache.spill", FaultAction::Error);
    let hot = synth_entry("hot", "ds", 120, SourceFormat::Json);
    store.insert(hot.entry).unwrap();
    store.record_hit("hot");
    for i in 0..6 {
        let filler = synth_entry(&format!("f{i}"), "ds", 200, SourceFormat::Json);
        for _ in 0..10 {
            store.record_hit(&format!("f{i}"));
        }
        let _ = store.insert(filler.entry);
    }
    assert!(store.spilled_names().is_empty());
    assert_eq!(store.stats().spilled_bytes, 0);
    fault::clear();

    // With the site clear, a hot eviction spills; failing the load site
    // turns the reload into a clean miss (and the file stays for later).
    let hot = synth_entry("hot", "ds", 120, SourceFormat::Json);
    store.insert(hot.entry).unwrap();
    store.record_hit("hot");
    for i in 6..12 {
        let filler = synth_entry(&format!("f{i}"), "ds", 200, SourceFormat::Json);
        for _ in 0..10 {
            store.record_hit(&format!("f{i}"));
        }
        let _ = store.insert(filler.entry);
    }
    if store.get("hot").is_none() {
        assert!(store.spilled_names().contains(&"hot".to_string()));
        fault::configure("cache.load", FaultAction::Error);
        assert!(store.lookup_by_signature("sig::hot").is_none());
        fault::clear();
        let reloaded = store.lookup_by_signature("sig::hot").unwrap();
        let expected = synth_entry("hot", "ds", 120, SourceFormat::Json).values;
        match reloaded.column("v") {
            Some(ColumnData::Int(got)) => assert_eq!(got, &expected),
            other => panic!("wrong column shape: {other:?}"),
        }
    }
}

// -- persistence ----------------------------------------------------------

#[test]
fn snapshot_round_trip_is_bit_exact() {
    let dir = scratch("roundtrip");
    let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
    for (i, format) in [SourceFormat::Json, SourceFormat::Csv, SourceFormat::Binary]
        .iter()
        .enumerate()
    {
        let fx = synth_entry(&format!("e{i}"), &format!("ds{i}"), 1500 + i * 137, *format);
        store.insert(fx.entry).unwrap();
        for _ in 0..i {
            store.record_hit(&format!("e{i}"));
        }
    }
    let written = persist::snapshot(&store, &dir).unwrap();
    assert_eq!(written, 3);

    let restored = CacheStore::new(MemoryManager::with_budget(1 << 20));
    let report = persist::warm(&restored, &dir).unwrap();
    assert_eq!(report.loaded, 3);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.skipped, 0);
    for original in store.entries_snapshot() {
        let back = restored.get(&original.name).unwrap();
        assert_eq!(back.plan_signature, original.plan_signature);
        assert_eq!(back.source_dataset, original.source_dataset);
        assert_eq!(back.source_format, original.source_format);
        assert_eq!(back.columns, original.columns);
        assert_eq!(back.oids, original.oids);
        assert_eq!(back.build_cost, original.build_cost);
        assert_eq!(back.hits(), original.hits());
    }
}

#[test]
fn corrupt_and_truncated_snapshots_are_rejected_not_fatal() {
    let dir = scratch("corrupt");
    let store = CacheStore::new(MemoryManager::with_budget(1 << 20));
    for i in 0..3 {
        let fx = synth_entry(&format!("e{i}"), "ds", 800, SourceFormat::Json);
        store.insert(fx.entry).unwrap();
    }
    persist::snapshot(&store, &dir).unwrap();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "pcache"))
        .collect();
    files.sort();
    assert_eq!(files.len(), 3);
    // Truncate one mid-body, flip a payload byte in another.
    let bytes = std::fs::read(&files[0]).unwrap();
    std::fs::write(&files[0], &bytes[..bytes.len() / 2]).unwrap();
    let mut bytes = std::fs::read(&files[1]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&files[1], &bytes).unwrap();

    let restored = CacheStore::new(MemoryManager::with_budget(1 << 20));
    let report = persist::warm(&restored, &dir).unwrap();
    assert_eq!(report.loaded, 1);
    assert_eq!(report.rejected, 2);
    assert_eq!(restored.stats().entries, 1);
}

#[test]
fn engine_warm_restart_restores_and_serves_bit_identically() {
    let dir = scratch("warm_engine");
    let snap = dir.join("snapshot");
    let q = "SELECT COUNT(*), MAX(b) FROM t WHERE a >= 0";

    let cold = QueryEngine::with_defaults();
    register_csv(&cold, &dir, "t", 2500);
    let baseline = cold.sql(q).unwrap();
    assert!(cold.cache_stats().entries >= 1);
    let written = cold.snapshot_caches(&snap).unwrap();
    assert!(written >= 1);

    // "Restart": a fresh engine over the same dataset, warmed from disk.
    let warm = QueryEngine::with_defaults();
    register_csv(&warm, &dir, "t", 2500);
    let report = warm.warm_from(&snap).unwrap();
    assert_eq!(report.loaded, written);
    assert_eq!(report.rejected, 0);
    assert_eq!(warm.cache_stats().entries, cold.cache_stats().entries);
    // Restored entries are bit-identical to the snapshot source.
    for original in cold.caches().entries_snapshot() {
        let back = warm.caches().get(&original.name).unwrap();
        assert_eq!(back.columns, original.columns);
        assert_eq!(back.oids, original.oids);
    }
    // And the very first query on the warm engine is served from cache,
    // with answers identical to the cold engine's.
    let served = warm.sql(q).unwrap();
    assert_eq!(served.scalar("count_0"), baseline.scalar("count_0"));
    assert_eq!(served.scalar("max_1"), baseline.scalar("max_1"));
    assert!(served
        .access_paths
        .iter()
        .any(|p| p.contains("cache") || p.contains("fully served")));
}

// -- concurrent readers during rebuild ------------------------------------

#[test]
fn concurrent_readers_during_rebuild_stay_bit_identical() {
    let dir = scratch("rebuild_readers");
    let engine = Arc::new(QueryEngine::with_defaults());
    register_csv(&engine, &dir, "t", 5000);
    let q = "SELECT COUNT(*), MAX(b) FROM t WHERE a >= 0";
    let baseline = engine.sql(q).unwrap();
    let expected_count = baseline.scalar("count_0");
    let expected_max = baseline.scalar("max_1");

    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for _reader in 0..4 {
            let engine = engine.clone();
            let failures = failures.clone();
            let expected_count = expected_count.clone();
            let expected_max = expected_max.clone();
            scope.spawn(move || {
                for round in 0..8 {
                    match engine.sql(q) {
                        Ok(result) => {
                            if result.scalar("count_0") != expected_count
                                || result.scalar("max_1") != expected_max
                            {
                                failures
                                    .lock()
                                    .unwrap()
                                    .push(format!("round {round}: divergent result"));
                            }
                        }
                        Err(e) => failures
                            .lock()
                            .unwrap()
                            .push(format!("round {round}: {e:?}")),
                    }
                }
            });
        }
        // Writer: invalidate + rebuild while the readers hammer the cache.
        for _ in 0..8 {
            engine.notify_update("t");
            let rebuilt = engine.sql(q).unwrap();
            assert_eq!(rebuilt.scalar("count_0"), expected_count);
        }
    });
    let failures = failures.lock().unwrap();
    assert!(failures.is_empty(), "concurrent failures: {failures:?}");
    // Readers that held a replaced entry finished on the old handle.
    let stats = engine.cache_stats();
    assert!(stats.entries >= 1);
}

// -- acceptance: steady mix under a small budget --------------------------

#[test]
fn steady_mix_under_small_budget_stays_bounded_with_hits_and_warm_restart() {
    // Each 600-row 2-column cache entry is ~14.5 KiB: the budget holds two
    // of the three working-set entries, so the steady mix produces hits on
    // the repeated dataset *and* evictions on the rotation.
    const BUDGET: usize = 32 * 1024;
    let dir = scratch("steady_mix");
    let snap = dir.join("snapshot");
    let spill = dir.join("spill");
    let config = EngineConfig {
        cache_budget: BUDGET,
        ..Default::default()
    }
    .with_cache_spill_dir(&spill);
    let engine = QueryEngine::new(config);
    for t in 0..3 {
        register_csv(&engine, &dir, &format!("t{t}"), 600);
    }
    // Steady mix: rotate over the datasets with a bias, long enough for
    // builds, hits, evictions and spills to all occur.
    let mut expected = Vec::new();
    for t in 0..3 {
        let q = format!("SELECT COUNT(*), MAX(b) FROM t{t} WHERE a >= 0");
        expected.push(engine.sql(&q).unwrap().scalar("count_0"));
    }
    for round in 0..12 {
        let t = [0, 1, 0, 2][round % 4];
        let q = format!("SELECT COUNT(*), MAX(b) FROM t{t} WHERE a >= 0");
        let result = engine.sql(&q).unwrap();
        assert_eq!(result.scalar("count_0"), expected[t]);
        let stats = engine.cache_stats();
        assert!(
            stats.bytes <= BUDGET,
            "round {round}: bytes {} over budget {BUDGET}",
            stats.bytes
        );
    }
    let stats = engine.cache_stats();
    assert!(
        stats.hits > 0,
        "steady mix produced no cache hits: {stats:?}"
    );

    // Warm restart under the same small budget: whatever fits loads, and
    // it loads bit-identically.
    let written = engine.snapshot_caches(&snap).unwrap();
    assert!(written >= 1);
    let restarted = QueryEngine::new(
        EngineConfig {
            cache_budget: BUDGET,
            ..Default::default()
        }
        .with_cache_spill_dir(dir.join("spill2")),
    );
    for t in 0..3 {
        register_csv(&restarted, &dir, &format!("t{t}"), 600);
    }
    let report = restarted.warm_from(&snap).unwrap();
    assert!(report.loaded >= 1);
    assert_eq!(report.rejected, 0);
    assert!(restarted.cache_stats().bytes <= BUDGET);
    for restored in restarted.caches().entries_snapshot() {
        let original = engine.caches().get(&restored.name).unwrap();
        assert_eq!(restored.columns, original.columns);
        assert_eq!(restored.oids, original.oids);
    }
    // First queries on the restarted engine serve from the warmed cache.
    let t0 = restarted
        .sql("SELECT COUNT(*), MAX(b) FROM t0 WHERE a >= 0")
        .unwrap();
    assert_eq!(t0.scalar("count_0"), expected[0]);
}

// -- admission interplay ---------------------------------------------------

#[test]
fn background_builds_never_steal_admission_slots_from_queries() {
    let dir = scratch("bg_admission");
    let engine = QueryEngine::new(
        EngineConfig::default()
            .with_background_cache_builds(true)
            .with_admission(proteus::core::AdmissionConfig::new(1, 4)),
    );
    register_csv(&engine, &dir, "t", 3000);
    let q = "SELECT COUNT(*) FROM t WHERE a >= 0";
    // With max_concurrent=1 the build can only take the slot *between*
    // queries; a back-to-back query stream must never be shed because of
    // it (queries queue, builds skip).
    for _ in 0..6 {
        match engine.sql(q) {
            Ok(result) => assert_eq!(result.scalar("count_0"), Some(Value::Int(3000))),
            Err(EngineError::Overloaded { .. }) => {
                panic!("query shed while only background builds competed")
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    engine.wait_for_cache_builds(Duration::from_secs(10));
}
