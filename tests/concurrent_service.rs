//! Concurrency chaos suite: N queries on the shared worker-pool scheduler
//! plus the TCP service on top.
//!
//! The contract under test extends the single-query chaos suite
//! (`tests/fault_injection.rs`) to concurrent traffic: a failing query —
//! panicking, cancelled, past-deadline or budget-tripped — running on the
//! *same shared pool* as healthy queries must leave those queries
//! bit-identical to their serial runs; overload is shed with a structured
//! retry hint; draining a loaded server loses no in-flight response.
//!
//! Fault configuration is process-global and the default engine path shares
//! one global scheduler, so the suite serializes itself on one mutex and
//! disarms every site on scope exit (panicking tests included). Service
//! tests use engines with an explicit [`AdmissionConfig`] — those get a
//! dedicated scheduler, so a drained server cannot close admission for the
//! rest of the suite.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use proteus::core::{AdmissionConfig, CancellationToken, EngineError};
use proteus::datagen::writers;
use proteus::plugins::fault::{self, FaultAction};
use proteus::prelude::*;
use proteus::service::{Client, ClientError, Server};

/// Rows per morsel in the executor — row counts below are chosen in
/// multiples of this.
const MORSEL: i64 = 1024;

// -- serialization --------------------------------------------------------

struct FaultScope {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        fault::clear();
    }
}

/// Serializes the suite (fault state and the default scheduler are
/// process-global) and disarms every site on exit, panicking tests
/// included.
fn fault_scope() -> FaultScope {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::clear();
    FaultScope { _guard: guard }
}

// -- fixtures -------------------------------------------------------------

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("proteus_concurrent").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rows_ab(n: i64) -> Vec<Value> {
    (0..n)
        .map(|i| Value::record(vec![("a", Value::Int(i)), ("b", Value::Int(i * 2))]))
        .collect()
}

fn schema_ab() -> Schema {
    Schema::from_pairs(vec![("a", DataType::Int), ("b", DataType::Int)])
}

/// An engine over a well-formed pipe-delimited CSV of `n` rows `(a, b)`.
fn csv_engine(name: &str, n: i64, config: EngineConfig) -> QueryEngine {
    let path = scratch(name).join("t.csv");
    writers::write_csv(&path, &rows_ab(n), &schema_ab(), '|').unwrap();
    let engine = QueryEngine::new(config);
    engine
        .register_csv("t", &path, schema_ab(), CsvOptions::default())
        .unwrap();
    engine
}

/// The victims' queries: distinct shapes (filtered count, sum, grouped
/// aggregate) so a scheduling bug that corrupts partials has three chances
/// to surface.
const VICTIM_QUERIES: [&str; 3] = [
    "SELECT COUNT(*) FROM t WHERE a < 6000",
    "SELECT SUM(b) FROM t WHERE a >= 1000",
    "SELECT MAX(b), MIN(a), COUNT(*) FROM t WHERE a < 7000",
];

// -- chaos: failing queries next to healthy ones --------------------------

/// Four attacker archetypes (cancelled, past-deadline, budget-tripped,
/// panicking-in-cache-build) hammer the shared pool while three victims run
/// the same queries in a loop. Every victim result must be bit-identical to
/// the serial (parallelism-1) answer.
#[test]
fn failing_queries_leave_concurrent_victims_bit_identical() {
    let _scope = fault_scope();

    // Serial ground truth, computed before any chaos.
    let serial = csv_engine(
        "chaos_serial",
        8 * MORSEL,
        EngineConfig::without_caching().with_parallelism(1),
    );
    let expected: Vec<Vec<Value>> = VICTIM_QUERIES
        .iter()
        .map(|q| serial.sql(q).unwrap().rows)
        .collect();

    // The only armed site is `cache.build`, which none of the victims'
    // engines (caching disabled) ever reaches: the panic attacker is the
    // sole query that passes through it.
    fault::configure("cache.build", FaultAction::Panic);

    let mismatches: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        // Victims: parallel engines on the shared global scheduler.
        for (slot, query) in VICTIM_QUERIES.iter().enumerate() {
            let expected = expected[slot].clone();
            let mismatches = Arc::clone(&mismatches);
            scope.spawn(move || {
                let engine = csv_engine(
                    &format!("chaos_victim_{slot}"),
                    8 * MORSEL,
                    EngineConfig::without_caching().with_parallelism(4),
                );
                for round in 0..8 {
                    let rows = engine.sql(query).unwrap().rows;
                    if rows != expected {
                        mismatches.lock().unwrap().push(format!(
                            "victim {slot} round {round}: {rows:?} != {expected:?}"
                        ));
                    }
                }
            });
        }

        // Attacker: cancelled mid-run from another thread.
        scope.spawn(|| {
            let engine = csv_engine(
                "chaos_cancel",
                16 * MORSEL,
                EngineConfig::without_caching().with_parallelism(4),
            );
            for _ in 0..8 {
                let token = CancellationToken::new();
                let trigger = token.clone();
                let firer = std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    trigger.cancel();
                });
                // Either the cancel lands mid-run (Cancelled) or the query
                // wins the race — both are legal; corruption is not.
                match engine.sql_with_cancellation("SELECT SUM(b) FROM t", Some(token)) {
                    Ok(_) | Err(EngineError::Cancelled) => {}
                    Err(other) => panic!("cancel attacker: unexpected {other:?}"),
                }
                firer.join().unwrap();
            }
        });

        // Attacker: impossible deadline.
        scope.spawn(|| {
            let engine = csv_engine(
                "chaos_deadline",
                16 * MORSEL,
                EngineConfig::without_caching()
                    .with_parallelism(4)
                    .with_timeout(Duration::from_micros(50)),
            );
            for _ in 0..8 {
                match engine.sql("SELECT SUM(b) FROM t WHERE a >= 0") {
                    Err(EngineError::DeadlineExceeded { .. }) | Ok(_) => {}
                    Err(other) => panic!("deadline attacker: unexpected {other:?}"),
                }
            }
        });

        // Attacker: join whose build arena blows a tiny memory budget.
        scope.spawn(|| {
            let dir = scratch("chaos_budget");
            let t_path = dir.join("t.csv");
            writers::write_csv(&t_path, &rows_ab(8 * MORSEL), &schema_ab(), '|').unwrap();
            let engine = QueryEngine::new(
                EngineConfig::without_caching()
                    .with_parallelism(4)
                    .with_memory_budget(16 * 1024),
            );
            engine
                .register_csv("t", &t_path, schema_ab(), CsvOptions::default())
                .unwrap();
            let join = LogicalPlan::scan("t", "t", Schema::empty())
                .join(
                    LogicalPlan::scan("t", "u", Schema::empty()),
                    Expr::path("t.a").eq(Expr::path("u.a")),
                    JoinKind::Inner,
                )
                .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")]);
            for _ in 0..8 {
                match engine.execute_plan(join.clone()) {
                    Err(EngineError::ResourceExhausted { .. }) => {}
                    other => panic!("budget attacker: expected ResourceExhausted, got {other:?}"),
                }
            }
        });

        // Attacker: panics inside its cache build (contained per worker).
        scope.spawn(|| {
            let engine = csv_engine(
                "chaos_panic",
                4 * MORSEL,
                EngineConfig::default().with_parallelism(4),
            );
            for _ in 0..8 {
                // The armed `cache.build` site panics; the engine must
                // surface a structured error, never abort the process.
                let _ = engine.sql("SELECT COUNT(*) FROM t WHERE a < 4000");
            }
        });
    });

    let mismatches = mismatches.lock().unwrap();
    assert!(
        mismatches.is_empty(),
        "victims diverged from serial: {mismatches:?}"
    );
}

/// An injected panic on the work-stealing path kills no pool worker and
/// corrupts no result: the submitting thread finishes the query alone.
#[test]
fn steal_path_panic_is_contained_and_results_stay_exact() {
    let _scope = fault_scope();
    let engine = csv_engine(
        "steal_panic",
        8 * MORSEL,
        EngineConfig::without_caching().with_parallelism(4),
    );
    let expected = engine.sql("SELECT SUM(b) FROM t").unwrap().rows;

    fault::configure("scheduler.steal", FaultAction::Panic);
    for _ in 0..4 {
        let rows = engine.sql("SELECT SUM(b) FROM t").unwrap().rows;
        assert_eq!(rows, expected, "result exact while every steal panics");
    }
    fault::clear();

    // The pool survived: the same engine still runs parallel queries.
    assert_eq!(engine.sql("SELECT SUM(b) FROM t").unwrap().rows, expected);
}

/// An injected failure at admission surfaces as a structured error — and
/// the engine is untouched for the next query.
#[test]
fn admission_fault_is_structured_and_recoverable() {
    let _scope = fault_scope();
    let engine = csv_engine(
        "admit_fault",
        2 * MORSEL,
        EngineConfig::without_caching().with_parallelism(2),
    );

    fault::configure("scheduler.admit", FaultAction::Error);
    match engine.sql("SELECT COUNT(*) FROM t") {
        Err(EngineError::Internal { site, .. }) => assert_eq!(site, "scheduler.admit"),
        other => panic!("expected Internal at scheduler.admit, got {other:?}"),
    }

    fault::configure("scheduler.admit", FaultAction::Panic);
    assert!(engine.sql("SELECT COUNT(*) FROM t").is_err());

    fault::clear();
    let result = engine.sql("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(result.scalar("count_0"), Some(Value::Int(2 * MORSEL)));
}

// -- the TCP service ------------------------------------------------------

fn service_engine(name: &str, n: i64, admission: AdmissionConfig) -> Arc<QueryEngine> {
    Arc::new(csv_engine(
        name,
        n,
        EngineConfig::without_caching()
            .with_parallelism(2)
            .with_admission(admission),
    ))
}

/// Rows and metrics cross the wire bit-identically to an in-process run.
#[test]
fn service_round_trips_rows_and_metrics() {
    let _scope = fault_scope();
    let engine = service_engine("svc_roundtrip", 4 * MORSEL, AdmissionConfig::new(4, 4));
    let direct = engine.sql("SELECT a, b FROM t WHERE a < 100").unwrap();
    let expected = direct.flattened_rows();

    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let reply = client.query("SELECT a, b FROM t WHERE a < 100").unwrap();
    assert_eq!(reply.rows, expected, "wire rows == in-process rows");
    assert_eq!(reply.metrics.rows, expected.len() as u64);
    assert!(reply.metrics.morsels > 0);
    assert!(reply.metrics.threads_used >= 1);
    assert!(reply.metrics.workers_touched >= 1);
    assert!(reply.metrics.workers_touched <= reply.metrics.threads_used);

    // Errors cross structured: an unknown dataset keeps its kind.
    match client.query("SELECT COUNT(*) FROM missing") {
        Err(ClientError::Engine(err)) => assert_eq!(err.kind, "unknown_dataset"),
        other => panic!("expected engine error, got {other:?}"),
    }

    // The connection stays usable after an error reply.
    let again = client.query("SELECT a, b FROM t WHERE a < 100").unwrap();
    assert_eq!(again.rows, expected);

    server.shutdown(Duration::from_secs(2));
}

/// Past `max_concurrent + queue_capacity`, queries are shed with the
/// structured retry hint; `query_with_backoff` honors it and lands.
#[test]
fn overload_sheds_with_retry_hint_and_backoff_recovers() {
    let _scope = fault_scope();
    let engine = service_engine(
        "svc_overload",
        8 * MORSEL,
        AdmissionConfig::new(1, 1).with_retry_after_ms(30),
    );
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // ~10 ms per morsel holds each query in the executor long enough for
    // the others to pile onto admission.
    fault::configure("dispatch.morsel", FaultAction::SleepMs(10));

    let outcomes: Vec<Result<u64, ClientError>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr)?;
                    client
                        .query("SELECT COUNT(*) FROM t")
                        .map(|r| r.metrics.rows)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    let mut ok = 0;
    let mut shed = 0;
    for outcome in &outcomes {
        match outcome {
            Ok(rows) => {
                assert_eq!(*rows, 1, "a COUNT(*) reply is one row");
                ok += 1;
            }
            Err(ClientError::Engine(err)) if err.kind == "overloaded" => {
                assert_eq!(err.retry_after_ms, Some(30), "shed carries the hint");
                assert_eq!(err.capacity, Some(1));
                shed += 1;
            }
            Err(other) => panic!("expected success or overloaded, got {other:?}"),
        }
    }
    assert!(
        ok >= 1,
        "one slot plus one queue entry must land: {outcomes:?}"
    );
    assert!(
        shed >= 1,
        "six clients into 1+1 capacity must shed: {outcomes:?}"
    );

    // Backoff turns shed into success once the burst drains.
    let mut client = Client::connect(addr).unwrap();
    let reply = client
        .query_with_backoff("SELECT COUNT(*) FROM t", 100)
        .unwrap();
    assert_eq!(reply.metrics.rows, 1);

    fault::clear();
    server.shutdown(Duration::from_secs(5));
}

/// Contended queries report their admission wait in `queue_wait_us`;
/// uncontended ones report zero.
#[test]
fn queue_wait_metric_reports_admission_delay() {
    let _scope = fault_scope();
    let engine = service_engine("svc_qwait", 8 * MORSEL, AdmissionConfig::new(1, 4));

    fault::configure("dispatch.morsel", FaultAction::SleepMs(10));
    let waits: Vec<u64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    engine
                        .sql("SELECT COUNT(*) FROM t")
                        .unwrap()
                        .metrics
                        .queue_wait_us
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    fault::clear();

    assert!(
        waits.iter().any(|w| *w > 0),
        "with one slot and three queries, someone queued: {waits:?}"
    );

    // Alone on the engine, admission is immediate and reports zero.
    let alone = engine.sql("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(alone.metrics.queue_wait_us, 0);
}

/// Closing the client connection mid-query cancels the query server-side;
/// an explicit `cancel` frame does the same with a structured reply.
#[test]
fn client_disconnect_and_cancel_frame_both_cancel_in_flight_queries() {
    let _scope = fault_scope();
    // With ~30 ms per morsel across 64 morsels on 2 threads, a full run
    // takes ~1 s — cancelling at 100 ms must come back far sooner.
    let engine = service_engine("svc_cancel", 64 * MORSEL, AdmissionConfig::new(2, 2));
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    fault::configure("dispatch.morsel", FaultAction::SleepMs(30));

    // Explicit cancel frame: the blocked query() returns `cancelled`.
    let mut client = Client::connect(addr).unwrap();
    let mut cancel = client.cancel_handle().unwrap();
    let started = Instant::now();
    let outcome = std::thread::scope(|scope| {
        let query = scope.spawn(move || client.query("SELECT SUM(b) FROM t"));
        std::thread::sleep(Duration::from_millis(100));
        cancel.cancel().unwrap();
        query.join().unwrap()
    });
    match outcome {
        Err(ClientError::Engine(err)) => assert_eq!(err.kind, "cancelled"),
        other => panic!("expected cancelled, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(700),
        "cancel cut the ~1s query short, took {:?}",
        started.elapsed()
    );

    // Disconnect: send a query over a raw socket, drop it, and watch the
    // server release the admission slot long before the query could have
    // finished.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    proteus::service::wire::write_frame(
        &mut raw,
        &proteus::service::wire::query_frame("SELECT SUM(b) FROM t"),
    )
    .unwrap();
    // Wait until the query is actually admitted before hanging up, so the
    // drain observation below cannot pass vacuously.
    let admitted = Instant::now();
    while engine.scheduler().running() == 0 {
        assert!(
            admitted.elapsed() < Duration::from_secs(2),
            "query never started"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let started = Instant::now();
    drop(raw);
    while engine.scheduler().running() > 0 {
        assert!(
            started.elapsed() < Duration::from_millis(700),
            "disconnect did not cancel the in-flight query"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    fault::clear();
    server.shutdown(Duration::from_secs(2));
}

/// Shutting down a loaded server loses no in-flight response: every client
/// whose query was admitted receives its complete reply.
#[test]
fn drain_under_load_flushes_in_flight_responses() {
    let _scope = fault_scope();
    let engine = service_engine("svc_drain", 8 * MORSEL, AdmissionConfig::new(4, 4));
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // ~5 ms per morsel: queries run ~40 ms, so the shutdown below lands
    // while they are mid-flight.
    fault::configure("dispatch.morsel", FaultAction::SleepMs(5));

    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.query("SELECT SUM(b) FROM t WHERE a >= 0")
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        let report = server.shutdown(Duration::from_secs(5));

        for client in clients {
            let reply = client.join().unwrap().expect("in-flight reply flushed");
            assert_eq!(reply.metrics.rows, 1);
        }
        assert_eq!(report.cancelled, 0, "grace period outlived every query");
    });
    fault::clear();

    // The drained server accepts nothing further.
    assert!(
        Client::connect(addr).is_err() || {
            let mut late = Client::connect(addr).unwrap();
            late.query("SELECT COUNT(*) FROM t").is_err()
        },
        "a drained server must not serve new queries"
    );
}

/// Socket-level faults (`service.read` / `service.write`) fail only the
/// affected connection — the engine and fresh connections are untouched.
#[test]
fn service_socket_faults_are_contained_to_their_connection() {
    let _scope = fault_scope();
    let engine = service_engine("svc_sockfault", 2 * MORSEL, AdmissionConfig::new(4, 4));
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Write fault on the very first frame: the client's own submission
    // fails fast.
    fault::configure("service.write", FaultAction::Error);
    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(
        client.query("SELECT COUNT(*) FROM t"),
        Err(ClientError::Io(_))
    ));
    fault::clear();

    // Write fault on the *second* frame: the submission passes, the
    // server's reply write dies, and the client observes the hangup
    // instead of waiting forever.
    fault::configure_after("service.write", FaultAction::Error, 1);
    let mut client = Client::connect(addr).unwrap();
    assert!(client.query("SELECT COUNT(*) FROM t").is_err());
    fault::clear();

    // Read fault: whichever side hits it first, the query fails
    // structurally and nothing hangs.
    fault::configure("service.read", FaultAction::Error);
    let mut client = Client::connect(addr).unwrap();
    assert!(client.query("SELECT COUNT(*) FROM t").is_err());
    fault::clear();

    // The engine outlived all three: a fresh connection round-trips.
    let mut healthy = Client::connect(addr).unwrap();
    let reply = healthy.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(reply.metrics.rows, 1);
    assert_eq!(
        reply.rows[0].as_record().unwrap().get("count_0"),
        Some(&Value::Int(2 * MORSEL))
    );

    server.shutdown(Duration::from_secs(2));
}
