//! End-to-end integration tests: the full pipeline (front-end → optimizer →
//! generated engine → plug-ins) over real files in every supported format,
//! checked against the reference interpreter and the baseline engines.

use proteus::baselines::{BaselineEngine, ColumnStoreEngine, DocumentStoreEngine, RowStoreEngine};
use proteus::datagen::tpch::{TpchGenerator, TpchScale};
use proteus::datagen::writers;
use proteus::prelude::*;

struct Fixture {
    dir: std::path::PathBuf,
    orders: Vec<Value>,
    lineitems: Vec<Value>,
}

fn fixture() -> Fixture {
    let dir = std::env::temp_dir().join("proteus_integration_tpch");
    std::fs::create_dir_all(&dir).unwrap();
    let mut generator = TpchGenerator::new(TpchScale(0.05));
    let (orders, lineitems) = generator.generate();
    writers::write_json(dir.join("lineitem.json"), &lineitems, true).unwrap();
    writers::write_json(dir.join("orders.json"), &orders, true).unwrap();
    writers::write_csv(
        dir.join("lineitem.csv"),
        &lineitems,
        &TpchGenerator::lineitem_schema(),
        '|',
    )
    .unwrap();
    writers::write_column_table(
        dir.join("lineitem_cols"),
        &lineitems,
        &TpchGenerator::lineitem_schema(),
    )
    .unwrap();
    writers::write_column_table(
        dir.join("orders_cols"),
        &orders,
        &TpchGenerator::orders_schema(),
    )
    .unwrap();
    writers::write_row_table(
        dir.join("orders.prow"),
        &orders,
        &TpchGenerator::orders_schema(),
    )
    .unwrap();
    Fixture {
        dir,
        orders,
        lineitems,
    }
}

fn reference(fixture: &Fixture, plan: &LogicalPlan) -> Vec<Value> {
    let mut catalog = proteus::algebra::interp::MemoryCatalog::new();
    catalog.register("lineitem", fixture.lineitems.clone());
    catalog.register("orders", fixture.orders.clone());
    proteus::algebra::interp::execute(plan, &catalog).unwrap()
}

fn count_plan(threshold: i64) -> LogicalPlan {
    LogicalPlan::scan("lineitem", "l", Schema::empty())
        .select(Expr::path("l.l_orderkey").lt(Expr::int(threshold)))
        .reduce(vec![
            ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
            ReduceSpec::new(Monoid::Max, Expr::path("l.l_quantity"), "maxq"),
        ])
}

#[test]
fn same_query_same_answer_across_all_formats() {
    let fx = fixture();
    let expected = reference(&fx, &count_plan(30));

    // JSON.
    let engine = QueryEngine::new(EngineConfig::without_caching());
    engine
        .register_json("lineitem", fx.dir.join("lineitem.json"))
        .unwrap();
    assert_eq!(engine.execute_plan(count_plan(30)).unwrap().rows, expected);

    // CSV.
    let engine = QueryEngine::new(EngineConfig::without_caching());
    engine
        .register_csv(
            "lineitem",
            fx.dir.join("lineitem.csv"),
            TpchGenerator::lineitem_schema(),
            CsvOptions::default(),
        )
        .unwrap();
    assert_eq!(engine.execute_plan(count_plan(30)).unwrap().rows, expected);

    // Binary columns.
    let engine = QueryEngine::new(EngineConfig::without_caching());
    engine
        .register_columns("lineitem", fx.dir.join("lineitem_cols"))
        .unwrap();
    assert_eq!(engine.execute_plan(count_plan(30)).unwrap().rows, expected);
}

#[test]
fn cross_format_join_matches_reference() {
    let fx = fixture();
    let plan = LogicalPlan::scan("orders", "o", Schema::empty())
        .join(
            LogicalPlan::scan("lineitem", "l", Schema::empty()),
            Expr::path("o.o_orderkey").eq(Expr::path("l.l_orderkey")),
            JoinKind::Inner,
        )
        .select(Expr::path("l.l_orderkey").lt(Expr::int(40)))
        .reduce(vec![
            ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
            ReduceSpec::new(Monoid::Max, Expr::path("o.o_totalprice"), "max_total"),
        ]);
    let expected = reference(&fx, &plan);

    // JSON orders ⋈ binary lineitems (heterogeneous inputs in one query).
    let engine = QueryEngine::new(EngineConfig::without_caching());
    engine
        .register_json("orders", fx.dir.join("orders.json"))
        .unwrap();
    engine
        .register_columns("lineitem", fx.dir.join("lineitem_cols"))
        .unwrap();
    assert_eq!(engine.execute_plan(plan.clone()).unwrap().rows, expected);

    // Binary rows orders ⋈ CSV lineitems.
    let engine = QueryEngine::new(EngineConfig::without_caching());
    engine
        .register_rows("orders", fx.dir.join("orders.prow"))
        .unwrap();
    engine
        .register_csv(
            "lineitem",
            fx.dir.join("lineitem.csv"),
            TpchGenerator::lineitem_schema(),
            CsvOptions::default(),
        )
        .unwrap();
    assert_eq!(engine.execute_plan(plan).unwrap().rows, expected);
}

#[test]
fn proteus_agrees_with_every_baseline_engine() {
    let fx = fixture();
    let plan = LogicalPlan::scan("lineitem", "l", Schema::empty())
        .select(
            Expr::path("l.l_orderkey")
                .lt(Expr::int(50))
                .and(Expr::path("l.l_quantity").lt(Expr::int(40))),
        )
        .nest(
            vec![Expr::path("l.l_linenumber")],
            vec!["line".into()],
            vec![
                ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
                ReduceSpec::new(Monoid::Sum, Expr::path("l.l_extendedprice"), "revenue"),
            ],
        );

    let engine = QueryEngine::new(EngineConfig::without_caching());
    engine
        .register_columns("lineitem", fx.dir.join("lineitem_cols"))
        .unwrap();
    let proteus_rows = engine.execute_plan(plan.clone()).unwrap().rows;

    let checksum = |rows: &[Value]| -> (usize, i64) {
        let total: i64 = rows
            .iter()
            .map(|r| r.as_record().unwrap().get("cnt").unwrap().as_int().unwrap())
            .sum();
        (rows.len(), total)
    };

    let mut row_store = RowStoreEngine::postgres_like();
    row_store.load("lineitem", fx.lineitems.clone());
    assert_eq!(
        checksum(&row_store.execute(&plan).unwrap()),
        checksum(&proteus_rows)
    );

    let mut column_store = ColumnStoreEngine::monetdb_like();
    column_store.load("lineitem", fx.lineitems.clone());
    assert_eq!(
        checksum(&column_store.execute(&plan).unwrap()),
        checksum(&proteus_rows)
    );

    let mut sorted = ColumnStoreEngine::dbms_c_like();
    sorted.load_with_sort_key("lineitem", fx.lineitems.clone(), Some("l_orderkey"));
    assert_eq!(
        checksum(&sorted.execute(&plan).unwrap()),
        checksum(&proteus_rows)
    );

    let mut documents = DocumentStoreEngine::new();
    documents.load("lineitem", fx.lineitems.clone());
    assert_eq!(
        checksum(&documents.execute(&plan).unwrap()),
        checksum(&proteus_rows)
    );
}

#[test]
fn caching_preserves_results_and_serves_second_query_from_cache() {
    let fx = fixture();
    let engine = QueryEngine::with_defaults();
    engine
        .register_json("lineitem", fx.dir.join("lineitem.json"))
        .unwrap();

    let q = "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_orderkey < 40";
    let first = engine.sql(q).unwrap();
    assert!(first.metrics.cached_values > 0);
    let second = engine.sql(q).unwrap();
    assert_eq!(first.rows, second.rows);
    assert!(engine.cache_stats().entries >= 1);
    assert!(second
        .access_paths
        .iter()
        .any(|p| p.contains("cache") || p.contains("fully served")));
}

#[test]
fn sql_and_comprehension_front_ends_agree() {
    let fx = fixture();
    let engine = QueryEngine::new(EngineConfig::without_caching());
    engine
        .register_columns("lineitem", fx.dir.join("lineitem_cols"))
        .unwrap();

    let sql = engine
        .sql("SELECT COUNT(*) FROM lineitem WHERE l_orderkey < 25")
        .unwrap();
    let comp = engine
        .comprehension("for { l <- lineitem, l.l_orderkey < 25 } yield count")
        .unwrap();
    assert_eq!(
        sql.rows[0].as_record().unwrap().get_index(0).unwrap().1,
        comp.rows[0].as_record().unwrap().get_index(0).unwrap().1
    );
}
