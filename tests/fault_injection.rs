//! Chaos suite: fault injection, malformed inputs, cancellation, deadlines,
//! memory budgets and panic containment.
//!
//! Every test asserts the same contract — a failing query returns a
//! *structured* [`EngineError`] (never a process abort), and the engine
//! stays fully usable afterwards. Fault configuration is process-global
//! (`proteus::plugins::fault`), so the whole suite serializes itself on one
//! mutex and disarms all sites on scope exit, panicking tests included.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use proteus::core::{BadRowPolicy, CancellationToken, EngineError};
use proteus::datagen::writers;
use proteus::plugins::fault::{self, FaultAction};
use proteus::prelude::*;

/// Rows per morsel in the executor — kept in sync with
/// `proteus_core::exec::MORSEL_SIZE` by the row-count choices below.
const MORSEL: i64 = 1024;

// -- serialization --------------------------------------------------------

/// Serializes the suite (fault state is process-global) and guarantees
/// every site is disarmed when the test ends, even on panic.
struct FaultScope {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        fault::clear();
    }
}

fn fault_scope() -> FaultScope {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::clear();
    FaultScope { _guard: guard }
}

// -- fixtures -------------------------------------------------------------

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("proteus_chaos").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rows_ab(n: i64) -> Vec<Value> {
    (0..n)
        .map(|i| Value::record(vec![("a", Value::Int(i)), ("b", Value::Int(i * 2))]))
        .collect()
}

fn schema_ab() -> Schema {
    Schema::from_pairs(vec![("a", DataType::Int), ("b", DataType::Int)])
}

/// An engine over a well-formed pipe-delimited CSV of `n` rows `(a, b)`.
fn csv_engine(name: &str, n: i64, config: EngineConfig) -> QueryEngine {
    let path = scratch(name).join("t.csv");
    writers::write_csv(&path, &rows_ab(n), &schema_ab(), '|').unwrap();
    let engine = QueryEngine::new(config);
    engine
        .register_csv("t", &path, schema_ab(), CsvOptions::default())
        .unwrap();
    engine
}

fn count_plan(table: &str) -> LogicalPlan {
    LogicalPlan::scan(table, "x", Schema::empty()).reduce(vec![ReduceSpec::new(
        Monoid::Count,
        Expr::int(1),
        "cnt",
    )])
}

fn count_of(result: &QueryResult) -> i64 {
    result.rows[0]
        .as_record()
        .unwrap()
        .get("cnt")
        .unwrap()
        .as_int()
        .unwrap()
}

// -- malformed inputs (bad-row policies, truncation) ----------------------

#[test]
fn csv_fail_policy_reports_the_offending_row() {
    let _scope = fault_scope();
    let path = scratch("csv_fail").join("bad.csv");
    let mut text = String::new();
    for i in 0..10 {
        if i == 4 {
            text.push_str("oops|not-an-int\n");
        } else {
            text.push_str(&format!("{i}|{}\n", i * 2));
        }
    }
    std::fs::write(&path, text).unwrap();

    let engine =
        QueryEngine::new(EngineConfig::without_caching().with_bad_row_policy(BadRowPolicy::Fail));
    let err = engine
        .register_csv("t", &path, schema_ab(), CsvOptions::default())
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("row 5"), "error names the bad row: {text}");

    // The engine itself is untouched: a clean file registers and queries.
    let good = scratch("csv_fail").join("good.csv");
    writers::write_csv(&good, &rows_ab(100), &schema_ab(), '|').unwrap();
    engine
        .register_csv("t", &good, schema_ab(), CsvOptions::default())
        .unwrap();
    assert_eq!(
        count_of(&engine.execute_plan(count_plan("t")).unwrap()),
        100
    );
}

#[test]
fn csv_skip_and_null_policies_count_bad_rows() {
    let _scope = fault_scope();
    let path = scratch("csv_lenient").join("bad.csv");
    let mut text = String::new();
    for i in 0..50 {
        if i == 7 || i == 23 {
            text.push_str("x|y\n");
        } else {
            text.push_str(&format!("{i}|{}\n", i * 2));
        }
    }
    std::fs::write(&path, text).unwrap();

    // Skip: the two bad rows vanish from the dataset.
    let engine =
        QueryEngine::new(EngineConfig::without_caching().with_bad_row_policy(BadRowPolicy::Skip));
    engine
        .register_csv("t", &path, schema_ab(), CsvOptions::default())
        .unwrap();
    let result = engine.execute_plan(count_plan("t")).unwrap();
    assert_eq!(count_of(&result), 48);
    assert_eq!(result.metrics.bad_rows, 2);

    // Null: the rows stay (their typed fields read as null) but are counted.
    let engine =
        QueryEngine::new(EngineConfig::without_caching().with_bad_row_policy(BadRowPolicy::Null));
    engine
        .register_csv("t", &path, schema_ab(), CsvOptions::default())
        .unwrap();
    let result = engine.execute_plan(count_plan("t")).unwrap();
    assert_eq!(count_of(&result), 50);
    assert_eq!(result.metrics.bad_rows, 2);
}

#[test]
fn json_strict_default_rejects_garbled_files_and_lenient_policies_recover() {
    let _scope = fault_scope();
    let path = scratch("json_garbled").join("t.json");
    let mut text = String::new();
    for i in 0..20 {
        if i == 2 {
            text.push_str("{\"a\": 2, \"b\":\n");
        } else {
            text.push_str(&format!("{{\"a\": {i}, \"b\": {}}}\n", i * 2));
        }
    }
    std::fs::write(&path, text).unwrap();

    // Historical strict semantics: no policy configured → the file is
    // rejected at registration.
    let engine = QueryEngine::new(EngineConfig::without_caching());
    assert!(engine.register_json("t", &path).is_err());

    // Skip: the damaged object is dropped and counted.
    let engine =
        QueryEngine::new(EngineConfig::without_caching().with_bad_row_policy(BadRowPolicy::Skip));
    engine.register_json("t", &path).unwrap();
    let result = engine.execute_plan(count_plan("t")).unwrap();
    assert_eq!(count_of(&result), 19);
    assert_eq!(result.metrics.bad_rows, 1);

    // Null: the object survives with every field null.
    let engine =
        QueryEngine::new(EngineConfig::without_caching().with_bad_row_policy(BadRowPolicy::Null));
    engine.register_json("t", &path).unwrap();
    let result = engine.execute_plan(count_plan("t")).unwrap();
    assert_eq!(count_of(&result), 20);
    assert_eq!(result.metrics.bad_rows, 1);
}

#[test]
fn truncated_binary_column_reports_byte_offset() {
    let _scope = fault_scope();
    let dir = scratch("truncated_cols").join("t_cols");
    writers::write_column_table(&dir, &rows_ab(500), &schema_ab()).unwrap();
    let col = dir.join("a.col");
    let bytes = std::fs::read(&col).unwrap();
    std::fs::write(&col, &bytes[..bytes.len() - 16]).unwrap();

    let engine = QueryEngine::new(EngineConfig::without_caching());
    let err = engine.register_columns("t", &dir).unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("truncated") && text.contains("byte offset"),
        "truncation error carries a byte offset: {text}"
    );
}

// -- fault sites ----------------------------------------------------------

#[test]
fn decode_faults_surface_structured_errors_in_every_format() {
    let _scope = fault_scope();

    let json_path = scratch("decode_faults").join("t.json");
    writers::write_json(&json_path, &rows_ab(100), false).unwrap();
    let cols_dir = scratch("decode_faults").join("t_cols");
    writers::write_column_table(&cols_dir, &rows_ab(100), &schema_ab()).unwrap();

    let csv = csv_engine("decode_faults", 100, EngineConfig::without_caching());
    let json = QueryEngine::new(EngineConfig::without_caching());
    json.register_json("t", &json_path).unwrap();
    let cols = QueryEngine::new(EngineConfig::without_caching());
    cols.register_columns("t", &cols_dir).unwrap();

    for (site, engine) in [
        ("csv.decode", &csv),
        ("json.decode", &json),
        ("binary.decode", &cols),
    ] {
        // Site armed on every hit: fires during access-path generation and
        // surfaces as a structured plug-in error naming the site.
        fault::configure(site, FaultAction::Error);
        let err = engine.execute_plan(count_plan("t")).unwrap_err();
        assert!(
            err.to_string().contains(site),
            "{site}: error names its site: {err}"
        );

        // Disarmed, the same engine answers the same query.
        fault::clear();
        assert_eq!(
            count_of(&engine.execute_plan(count_plan("t")).unwrap()),
            100
        );

        // Skipping the generation hit pushes the fault into the morsel
        // fill, where it has no error channel: the sentinel panic must come
        // back as a structured internal error, not a worker panic.
        fault::configure_after(site, FaultAction::Error, 1);
        let err = engine.execute_plan(count_plan("t")).unwrap_err();
        match &err {
            EngineError::Internal { detail, .. } => {
                assert!(detail.contains(site), "{site}: {detail}")
            }
            other => panic!("{site}: expected Internal, got {other:?}"),
        }
        fault::clear();
        assert_eq!(
            count_of(&engine.execute_plan(count_plan("t")).unwrap()),
            100
        );
    }
}

#[test]
fn worker_panic_is_contained_and_engine_stays_usable() {
    let _scope = fault_scope();
    let engine = csv_engine("worker_panic", 4 * MORSEL, EngineConfig::without_caching());

    fault::configure("dispatch.morsel", FaultAction::Panic);
    let err = engine.execute_plan(count_plan("t")).unwrap_err();
    match &err {
        EngineError::WorkerPanic { payload } => {
            assert!(payload.contains("dispatch.morsel"), "payload: {payload}")
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }

    // Containment, not survival-by-luck: the same engine, same dataset and
    // same plan produce the right answer immediately afterwards.
    fault::clear();
    let result = engine.execute_plan(count_plan("t")).unwrap();
    assert_eq!(count_of(&result), 4 * MORSEL);
}

#[test]
fn injected_failures_agree_between_serial_and_parallel_execution() {
    let _scope = fault_scope();
    for parallelism in [1usize, 4] {
        let engine = csv_engine(
            "serial_parallel",
            8 * MORSEL,
            EngineConfig::without_caching().with_parallelism(parallelism),
        );

        fault::configure("merge.partial", FaultAction::Error);
        match engine.execute_plan(count_plan("t")).unwrap_err() {
            EngineError::Internal { site, .. } => assert_eq!(site, "merge.partial"),
            other => panic!("threads={parallelism}: expected Internal, got {other:?}"),
        }
        fault::clear();

        fault::configure("dispatch.morsel", FaultAction::Panic);
        match engine.execute_plan(count_plan("t")).unwrap_err() {
            EngineError::WorkerPanic { .. } => {}
            other => panic!("threads={parallelism}: expected WorkerPanic, got {other:?}"),
        }
        fault::clear();

        assert_eq!(
            count_of(&engine.execute_plan(count_plan("t")).unwrap()),
            8 * MORSEL
        );
    }
}

// -- cancellation, deadlines, budgets -------------------------------------

#[test]
fn cancellation_stops_a_query_before_and_during_execution() {
    let _scope = fault_scope();
    let engine = csv_engine("cancellation", 8 * MORSEL, EngineConfig::without_caching());

    // Already-cancelled token: the first morsel checkpoint trips.
    let token = CancellationToken::new();
    token.cancel();
    let err = engine
        .execute_plan_with_cancellation(count_plan("t"), Some(token))
        .unwrap_err();
    assert!(matches!(err, EngineError::Cancelled), "got {err:?}");

    // Mid-query: a sleep fault holds each morsel long enough for a watcher
    // thread to cancel while the query is demonstrably still running.
    fault::configure("dispatch.morsel", FaultAction::SleepMs(15));
    let token = CancellationToken::new();
    let watcher = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        })
    };
    let err = engine
        .execute_plan_with_cancellation(count_plan("t"), Some(token))
        .unwrap_err();
    watcher.join().unwrap();
    assert!(matches!(err, EngineError::Cancelled), "got {err:?}");

    fault::clear();
    assert_eq!(
        count_of(&engine.execute_plan(count_plan("t")).unwrap()),
        8 * MORSEL
    );
}

#[test]
fn deadline_exceeded_carries_partial_metrics() {
    let _scope = fault_scope();
    let engine = csv_engine(
        "deadline",
        8 * MORSEL,
        EngineConfig::without_caching().with_timeout(Duration::from_millis(20)),
    );

    // Each morsel sleeps past the deadline's granularity, so the deadline
    // trips after at least one morsel has executed.
    fault::configure("dispatch.morsel", FaultAction::SleepMs(15));
    let err = engine.execute_plan(count_plan("t")).unwrap_err();
    match &err {
        EngineError::DeadlineExceeded {
            timeout_ms,
            partial,
        } => {
            assert_eq!(*timeout_ms, 20);
            assert!(
                partial.morsels >= 1,
                "partial metrics record progress: {partial}"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // Without the sleeps, the same engine finishes well inside its deadline.
    fault::clear();
    assert_eq!(
        count_of(&engine.execute_plan(count_plan("t")).unwrap()),
        8 * MORSEL
    );
}

#[test]
fn memory_budget_trips_mid_join_build_and_cheap_queries_still_run() {
    let _scope = fault_scope();
    let dir = scratch("budget");
    let t_path = dir.join("t.csv");
    writers::write_csv(&t_path, &rows_ab(8 * MORSEL), &schema_ab(), '|').unwrap();
    let u_schema = Schema::from_pairs(vec![("a", DataType::Int), ("c", DataType::Int)]);
    let u_rows: Vec<Value> = (0..8 * MORSEL)
        .map(|i| Value::record(vec![("a", Value::Int(i)), ("c", Value::Int(i + 1))]))
        .collect();
    let u_path = dir.join("u.csv");
    writers::write_csv(&u_path, &u_rows, &u_schema, '|').unwrap();

    let engine = QueryEngine::new(EngineConfig::without_caching().with_memory_budget(16 * 1024));
    engine
        .register_csv("t", &t_path, schema_ab(), CsvOptions::default())
        .unwrap();
    engine
        .register_csv("u", &u_path, u_schema, CsvOptions::default())
        .unwrap();

    let join = LogicalPlan::scan("t", "t", Schema::empty())
        .join(
            LogicalPlan::scan("u", "u", Schema::empty()),
            Expr::path("t.a").eq(Expr::path("u.a")),
            JoinKind::Inner,
        )
        .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")]);
    match engine.execute_plan(join).unwrap_err() {
        EngineError::ResourceExhausted {
            site,
            used_bytes,
            budget_bytes,
        } => {
            assert_eq!(site, "join build arena");
            assert!(used_bytes > budget_bytes);
            assert_eq!(budget_bytes, 16 * 1024);
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }

    // The budget is per-query: a query whose state fits runs on the same
    // engine without reconfiguration.
    assert_eq!(
        count_of(&engine.execute_plan(count_plan("t")).unwrap()),
        8 * MORSEL
    );
}

// -- cache lifecycle ------------------------------------------------------

#[test]
fn failed_cache_build_registers_no_cache() {
    let _scope = fault_scope();
    let path = scratch("cache_fault").join("t.json");
    writers::write_json(&path, &rows_ab(4 * MORSEL), false).unwrap();
    let engine = QueryEngine::with_defaults();
    engine.register_json("t", &path).unwrap();

    let query = "SELECT COUNT(*), SUM(b) FROM t WHERE a < 2000";

    // The first run would build a positional-map/values cache as a side
    // effect; an injected fault in that build must fail the query and leave
    // *nothing* registered.
    fault::configure("cache.build", FaultAction::Error);
    let err = engine.sql(query).unwrap_err();
    match &err {
        EngineError::Internal { detail, .. } => {
            assert!(detail.contains("cache.build"), "detail: {detail}")
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    assert_eq!(
        engine.cache_stats().entries,
        0,
        "a failed build must not register a half-built cache"
    );

    // Disarmed, the cache builds cleanly and serves the repeat run.
    fault::clear();
    let first = engine.sql(query).unwrap();
    assert!(first.metrics.cached_values > 0);
    assert!(engine.cache_stats().entries >= 1);
    let second = engine.sql(query).unwrap();
    assert_eq!(first.rows, second.rows);
}
