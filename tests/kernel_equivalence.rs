//! Property tests for the vectorized predicate kernels at the engine level:
//! across the fig05–fig12 predicate shapes over binary-column, JSON and CSV
//! representations, a vectorized engine (kernels on, the default) must
//! return exactly the rows of a closure-only engine (`vectorized: false`)
//! and of the reference interpreter — and the metrics must prove the
//! kernels actually ran (`kernel_rows > 0`, zero per-tuple allocations).
//!
//! Offline build: the properties run over a deterministic seed sweep
//! (failing seeds are in the assertion messages), like the other
//! equivalence suites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use proteus::datagen::writers;
use proteus::plugins::binary::ColumnPlugin;
use proteus::prelude::*;
use proteus::storage::ColumnData;

const CASES: u64 = 16;

fn random_rows(rng: &mut StdRng) -> Vec<(i64, f64, String)> {
    let len = rng.gen_range(1usize..80);
    (0..len)
        .map(|_| {
            let k = rng.gen_range(0i64..50);
            let q = (rng.gen_range(0.0..100.0) * 4.0f64).round() / 4.0;
            let words = ["", "fox", "quick fox", "lazy dog", "zebra"];
            let c = words[rng.gen_range(0usize..words.len())].to_string();
            (k, q, c)
        })
        .collect()
}

fn to_records(rows: &[(i64, f64, String)]) -> Vec<Value> {
    rows.iter()
        .map(|(k, q, c)| {
            Value::record(vec![
                ("k", Value::Int(*k)),
                ("q", Value::Float(*q)),
                ("c", Value::Str(c.clone())),
            ])
        })
        .collect()
}

fn schema() -> Schema {
    Schema::from_pairs(vec![
        ("k", DataType::Int),
        ("q", DataType::Float),
        ("c", DataType::String),
    ])
}

/// The join build side: keys overlapping (and overshooting) `t.k`'s range,
/// a float payload, and a string key column for string/multi-key joins.
fn random_build_rows(rng: &mut StdRng) -> Vec<(i64, f64, String)> {
    let len = rng.gen_range(1usize..40);
    (0..len)
        .map(|_| {
            let ok = rng.gen_range(-5i64..55);
            let ov = (rng.gen_range(0.0..50.0) * 2.0f64).round() / 2.0;
            let words = ["", "fox", "quick fox", "lazy dog", "zebra", "nope"];
            let oc = words[rng.gen_range(0usize..words.len())].to_string();
            (ok, ov, oc)
        })
        .collect()
}

fn build_to_records(rows: &[(i64, f64, String)]) -> Vec<Value> {
    rows.iter()
        .map(|(ok, ov, oc)| {
            Value::record(vec![
                ("ok", Value::Int(*ok)),
                ("ov", Value::Float(*ov)),
                ("oc", Value::Str(oc.clone())),
            ])
        })
        .collect()
}

fn build_schema() -> Schema {
    Schema::from_pairs(vec![
        ("ok", DataType::Int),
        ("ov", DataType::Float),
        ("oc", DataType::String),
    ])
}

/// Join shapes over build side `o` (the plan's left input) and probe side
/// `t`: inner and left-outer kinds, typed single/multi/string keys, residual
/// conjuncts, aggregating and collecting sinks.
fn join_plans_for(pred: Expr) -> Vec<LogicalPlan> {
    let t = || LogicalPlan::scan("t", "t", Schema::empty());
    let o = || LogicalPlan::scan("o", "o", Schema::empty());
    let on = || Expr::path("o.ok").eq(Expr::path("t.k"));
    let count =
        |plan: LogicalPlan| plan.reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")]);
    vec![
        // Inner join under a probe-side selection → count (nothing is live:
        // the fully-kernel path materializes no Value at all).
        count(o().join(t().select(pred.clone()), on(), JoinKind::Inner)),
        // Aggregates reading live columns from both sides.
        o().join(t(), on(), JoinKind::Inner).reduce(vec![
            ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
            ReduceSpec::new(Monoid::Max, Expr::path("o.ov"), "maxv"),
            ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
        ]),
        // Equi-keys plus a non-equi residual conjunct.
        count(o().join(
            t(),
            on().and(Expr::path("o.ov").lt(Expr::path("t.q"))),
            JoinKind::Inner,
        )),
        // Left outer: unmatched build rows pad the probe side with nulls.
        o().join(t().select(pred.clone()), on(), JoinKind::LeftOuter)
            .reduce(vec![
                ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
                ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
            ]),
        // Group-by over the join output.
        o().join(t(), on(), JoinKind::Inner).nest(
            vec![Expr::path("t.k")],
            vec!["key".into()],
            vec![
                ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
                ReduceSpec::new(Monoid::Sum, Expr::path("o.ov"), "total"),
            ],
        ),
        // Multi-key equi-join (int + string components).
        count(o().join(
            t(),
            on().and(Expr::path("o.oc").eq(Expr::path("t.c"))),
            JoinKind::Inner,
        )),
        // String-key join.
        count(o().join(
            t(),
            Expr::path("o.oc").eq(Expr::path("t.c")),
            JoinKind::Inner,
        )),
        // Collect the joined rows (row order must match exactly).
        o().join(t().select(pred.clone()), on(), JoinKind::Inner),
        // Left-outer collect (null-padded tails included).
        o().join(t().select(pred), on(), JoinKind::LeftOuter),
    ]
}

/// The fig05–fig12 selection shapes: threshold selections (fig07/fig08),
/// multi-predicate conjunctions, computed predicates (fig05-style
/// expressions), string predicates, and group-bys under a selection
/// (fig11/fig12).
fn predicate_shapes(rng: &mut StdRng) -> Vec<Expr> {
    let t = rng.gen_range(0i64..55);
    let f = rng.gen_range(0.0f64..100.0);
    vec![
        Expr::path("t.k").lt(Expr::int(t)),
        Expr::path("t.k")
            .lt(Expr::int(t))
            .and(Expr::path("t.q").lt(Expr::float(f))),
        Expr::path("t.k")
            .lt(Expr::int(t))
            .and(Expr::path("t.q").gt(Expr::float(10.0)))
            .and(Expr::path("t.q").lt(Expr::float(90.0))),
        Expr::binary(
            proteus::algebra::BinaryOp::Mul,
            Expr::path("t.k"),
            Expr::int(2),
        )
        .lt(Expr::int(t)),
        Expr::path("t.c").eq(Expr::string("fox")),
        Expr::Contains {
            expr: Box::new(Expr::path("t.c")),
            needle: "ox".into(),
        },
        Expr::path("t.k")
            .gt(Expr::int(t))
            .or(Expr::path("t.q").lt(Expr::float(f))),
        // Mixed: kernel-eligible + closure-fallback conjuncts in one select.
        Expr::path("t.k").lt(Expr::int(t)).and(
            Expr::binary(
                proteus::algebra::BinaryOp::Mod,
                Expr::path("t.k"),
                Expr::int(3),
            )
            .eq(Expr::int(0)),
        ),
    ]
}

fn plans_for(pred: Expr) -> Vec<LogicalPlan> {
    let scan = || LogicalPlan::scan("t", "t", Schema::empty());
    vec![
        // fig07/08-style selection → count.
        scan().select(pred.clone()).reduce(vec![ReduceSpec::new(
            Monoid::Count,
            Expr::int(1),
            "cnt",
        )]),
        // fig05/06-style aggregates over the selection.
        scan().select(pred.clone()).reduce(vec![
            ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
            ReduceSpec::new(Monoid::Max, Expr::path("t.k"), "maxk"),
        ]),
        // The full scalar-monoid spread (vectorized aggregate kernels),
        // including a computed input and a closure-fallback division spec.
        scan().select(pred.clone()).reduce(vec![
            ReduceSpec::new(Monoid::Avg, Expr::path("t.q"), "avgq"),
            ReduceSpec::new(Monoid::Min, Expr::path("t.k"), "mink"),
            ReduceSpec::new(
                Monoid::Max,
                Expr::binary(
                    proteus::algebra::BinaryOp::Add,
                    Expr::path("t.q"),
                    Expr::path("t.k"),
                ),
                "maxqk",
            ),
            ReduceSpec::new(
                Monoid::Sum,
                Expr::binary(
                    proteus::algebra::BinaryOp::Div,
                    Expr::path("t.q"),
                    Expr::float(2.0),
                ),
                "halves",
            ),
        ]),
        // Boolean monoids over predicate-shaped inputs.
        scan().reduce(vec![
            ReduceSpec::new(Monoid::And, pred.clone(), "every"),
            ReduceSpec::new(Monoid::Or, pred.clone(), "some"),
            ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
        ]),
        // Reduce-level predicate (`SUM(x) WHERE p` folds into the kernel
        // mask pass).
        LogicalPlan::Reduce {
            input: Box::new(scan()),
            outputs: vec![
                ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
                ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
            ],
            predicate: Some(pred.clone()),
        },
        // fig11/12-style group-by under the selection.
        scan().select(pred.clone()).nest(
            vec![Expr::path("t.k")],
            vec!["key".into()],
            vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")],
        ),
        // Multi-key group-by (typed key ingest) with kernel aggregates.
        scan().select(pred.clone()).nest(
            vec![Expr::path("t.k"), Expr::path("t.c")],
            vec!["key".into(), "word".into()],
            vec![
                ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
                ReduceSpec::new(Monoid::Avg, Expr::path("t.q"), "avgq"),
                ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
            ],
        ),
        // Collection monoids (closure specs, parallel-safe tagged merge).
        scan().select(pred.clone()).reduce(vec![
            ReduceSpec::new(Monoid::List, Expr::path("t.k"), "all"),
            ReduceSpec::new(Monoid::Set, Expr::path("t.c"), "words"),
        ]),
        // Projection (collect) of the surviving rows.
        scan().select(pred),
    ]
}

fn reference(rows: &[Value], plan: &LogicalPlan) -> Vec<Value> {
    let mut catalog = proteus::algebra::interp::MemoryCatalog::new();
    catalog.register("t", rows.to_vec());
    proteus::algebra::interp::execute(plan, &catalog).unwrap()
}

fn join_reference(probe: &[Value], build: &[Value], plan: &LogicalPlan) -> Vec<Value> {
    let mut catalog = proteus::algebra::interp::MemoryCatalog::new();
    catalog.register("t", probe.to_vec());
    catalog.register("o", build.to_vec());
    proteus::algebra::interp::execute(plan, &catalog).unwrap()
}

/// Vectorized vs closure-only engines over a join plan: identical rows,
/// aggregating plans also checked against the reference interpreter, and
/// the metrics prove which key tier ran — the closure engine must extract
/// every key through compiled closures, the vectorized engine must hash and
/// compare every key straight from the typed columns (every key in
/// [`join_plans_for`] is a direct path to a typed scan slot).
fn join_engines_agree(
    vectorized: &QueryEngine,
    closures: &QueryEngine,
    probe_records: &[Value],
    build_records: &[Value],
    plan: &LogicalPlan,
    label: &str,
) {
    let plan = proteus::algebra::rewrite::rewrite(plan.clone());
    let fast = vectorized.execute_plan(plan.clone()).unwrap();
    let slow = closures.execute_plan(plan.clone()).unwrap();
    assert_eq!(fast.rows, slow.rows, "{label}: kernel vs closure join rows");
    if matches!(plan, LogicalPlan::Reduce { .. } | LogicalPlan::Nest { .. }) {
        let mut got = fast.rows.clone();
        let mut expected = join_reference(probe_records, build_records, &plan);
        got.sort_by(|a, b| a.total_cmp(b));
        expected.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(got, expected, "{label}: kernel vs interpreter join rows");
    }
    assert_eq!(
        slow.metrics.join_kernel_rows, 0,
        "{label}: closure engine must not engage join kernels"
    );
    assert!(
        slow.metrics.join_fallback_rows > 0,
        "{label}: closure engine reported no fallback key rows (metrics: {})",
        slow.metrics
    );
    assert!(
        fast.metrics.join_kernel_rows > 0,
        "{label}: join kernels were not engaged (metrics: {})",
        fast.metrics
    );
    assert_eq!(
        fast.metrics.join_fallback_rows, 0,
        "{label}: typed-key join unexpectedly fell back (metrics: {})",
        fast.metrics
    );
}

fn engines_agree(
    vectorized: &QueryEngine,
    closures: &QueryEngine,
    records: &[Value],
    plan: &LogicalPlan,
    expect_kernels: bool,
    label: &str,
) {
    let plan = proteus::algebra::rewrite::rewrite(plan.clone());
    let fast = vectorized.execute_plan(plan.clone()).unwrap();
    let slow = closures.execute_plan(plan.clone()).unwrap();
    assert_eq!(fast.rows, slow.rows, "{label}: kernel vs closure rows");
    // Aggregating plans are also checked against the reference interpreter
    // (order-insensitively: group-by row order is engine-defined). Bare
    // collects only compare engine-vs-engine — the interpreter renders
    // bindings as nested records, a representation difference that predates
    // the kernels.
    if matches!(plan, LogicalPlan::Reduce { .. } | LogicalPlan::Nest { .. }) {
        let mut got = fast.rows.clone();
        let mut expected = reference(records, &plan);
        got.sort_by(|a, b| a.total_cmp(b));
        expected.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(got, expected, "{label}: kernel vs interpreter rows");
    }
    assert_eq!(
        slow.metrics.kernel_rows, 0,
        "{label}: closure engine must not engage kernels"
    );
    fn has_select(plan: &LogicalPlan) -> bool {
        matches!(plan, LogicalPlan::Select { .. }) || plan.children().iter().any(|c| has_select(c))
    }
    if expect_kernels && has_select(&plan) {
        assert!(
            fast.metrics.kernel_rows > 0,
            "{label}: kernels were not engaged (metrics: {})",
            fast.metrics
        );
    }
    assert_eq!(
        slow.metrics.agg_kernel_rows, 0,
        "{label}: closure engine must not engage aggregate kernels"
    );
    // Whenever the vectorized engine moved output specs off the closure
    // fold, the aggregate kernels must report the folded rows.
    if fast.metrics.agg_fallback_rows < slow.metrics.agg_fallback_rows {
        assert!(
            fast.metrics.agg_kernel_rows > 0,
            "{label}: aggregate kernels were not engaged (metrics: {})",
            fast.metrics
        );
    }
    assert_eq!(
        fast.metrics.binding_allocs, slow.metrics.binding_allocs,
        "{label}: vectorized path changed per-tuple allocation behavior"
    );
}

#[test]
fn kernels_equal_closures_over_binary_columns() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED + seed);
        let rows = random_rows(&mut rng);
        let records = to_records(&rows);
        let plugin = ColumnPlugin::from_pairs(
            "t",
            vec![
                (
                    "k".to_string(),
                    ColumnData::Int(rows.iter().map(|(k, _, _)| *k).collect()),
                ),
                (
                    "q".to_string(),
                    ColumnData::Float(rows.iter().map(|(_, q, _)| *q).collect()),
                ),
                (
                    "c".to_string(),
                    ColumnData::Str(rows.iter().map(|(_, _, c)| c.clone()).collect()),
                ),
            ],
        )
        .unwrap();
        // Morsel skipping off: this suite asserts the compare kernels engage
        // on every predicate shape, and a single-morsel scan is routinely
        // provably empty/full for a random threshold (zone maps would
        // legitimately bypass the kernels). Skip-on equivalence is covered
        // by tests/zone_map_skipping.rs.
        let vectorized =
            QueryEngine::new(EngineConfig::without_caching().with_morsel_skipping(false));
        let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
        vectorized.register_plugin(std::sync::Arc::new(plugin.clone()));
        closures.register_plugin(std::sync::Arc::new(plugin));

        for (pi, pred) in predicate_shapes(&mut rng).into_iter().enumerate() {
            for (qi, plan) in plans_for(pred).into_iter().enumerate() {
                engines_agree(
                    &vectorized,
                    &closures,
                    &records,
                    &plan,
                    true,
                    &format!("binary seed {seed} pred {pi} plan {qi}"),
                );
            }
        }
    }
}

#[test]
fn kernels_equal_closures_over_json_and_csv() {
    let dir = std::env::temp_dir().join(format!("proteus_kernel_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(0xF11E + seed);
        let rows = random_rows(&mut rng);
        let records = to_records(&rows);

        let json_path = dir.join(format!("t_{seed}.json"));
        writers::write_json(&json_path, &records, true).unwrap();
        let csv_path = dir.join(format!("t_{seed}.csv"));
        writers::write_csv(&csv_path, &records, &schema(), '|').unwrap();

        for format in ["json", "csv"] {
            // Skipping off for the same reason as the binary suite above.
            let vectorized =
                QueryEngine::new(EngineConfig::without_caching().with_morsel_skipping(false));
            let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
            for engine in [&vectorized, &closures] {
                if format == "json" {
                    engine.register_json("t", &json_path).unwrap();
                } else {
                    engine
                        .register_csv("t", &csv_path, schema(), CsvOptions::default())
                        .unwrap();
                }
            }
            for (pi, pred) in predicate_shapes(&mut rng).into_iter().enumerate() {
                for (qi, plan) in plans_for(pred).into_iter().enumerate() {
                    engines_agree(
                        &vectorized,
                        &closures,
                        &records,
                        &plan,
                        true,
                        &format!("{format} seed {seed} pred {pi} plan {qi}"),
                    );
                }
            }
        }
    }
}

#[test]
fn kernels_survive_parallel_execution() {
    // Multi-morsel data so parallel workers genuinely run the kernel path.
    let rows = 8 * 1024_i64;
    let plugin = ColumnPlugin::from_pairs(
        "t",
        vec![
            (
                "k".to_string(),
                ColumnData::Int((0..rows).map(|i| i % 500).collect()),
            ),
            (
                "q".to_string(),
                ColumnData::Float((0..rows).map(|i| (i % 97) as f64).collect()),
            ),
        ],
    )
    .unwrap();
    let serial = QueryEngine::new(EngineConfig::without_caching());
    let parallel = QueryEngine::new(EngineConfig::without_caching().with_parallelism(4));
    serial.register_plugin(std::sync::Arc::new(plugin.clone()));
    parallel.register_plugin(std::sync::Arc::new(plugin));

    let plan = proteus::algebra::rewrite::rewrite(
        LogicalPlan::scan("t", "t", Schema::empty())
            .select(
                Expr::path("t.k")
                    .lt(Expr::int(250))
                    .and(Expr::path("t.q").lt(Expr::float(48.0))),
            )
            .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")]),
    );
    let a = serial.execute_plan(plan.clone()).unwrap();
    let b = parallel.execute_plan(plan).unwrap();
    assert_eq!(a.rows, b.rows);
    assert!(a.metrics.kernel_rows == rows as u64);
    assert!(b.metrics.kernel_rows == rows as u64);
    assert!(b.metrics.threads_used > 1);
    assert_eq!(a.metrics.binding_allocs, 0);
    assert_eq!(b.metrics.binding_allocs, 0);
}

fn build_plugin(rows: &[(i64, f64, String)]) -> ColumnPlugin {
    ColumnPlugin::from_pairs(
        "o",
        vec![
            (
                "ok".to_string(),
                ColumnData::Int(rows.iter().map(|(ok, _, _)| *ok).collect()),
            ),
            (
                "ov".to_string(),
                ColumnData::Float(rows.iter().map(|(_, ov, _)| *ov).collect()),
            ),
            (
                "oc".to_string(),
                ColumnData::Str(rows.iter().map(|(_, _, oc)| oc.clone()).collect()),
            ),
        ],
    )
    .unwrap()
}

fn probe_plugin(rows: &[(i64, f64, String)]) -> ColumnPlugin {
    ColumnPlugin::from_pairs(
        "t",
        vec![
            (
                "k".to_string(),
                ColumnData::Int(rows.iter().map(|(k, _, _)| *k).collect()),
            ),
            (
                "q".to_string(),
                ColumnData::Float(rows.iter().map(|(_, q, _)| *q).collect()),
            ),
            (
                "c".to_string(),
                ColumnData::Str(rows.iter().map(|(_, _, c)| c.clone()).collect()),
            ),
        ],
    )
    .unwrap()
}

#[test]
fn join_kernels_equal_closures_over_binary_columns() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x10_1F + seed);
        let probe_rows = random_rows(&mut rng);
        let build_rows = random_build_rows(&mut rng);
        let probe_records = to_records(&probe_rows);
        let build_records = build_to_records(&build_rows);

        // Skipping off: a random threshold below the join can prove a whole
        // single-morsel side empty, zeroing the join-kernel counters this
        // suite asserts on.
        let vectorized =
            QueryEngine::new(EngineConfig::without_caching().with_morsel_skipping(false));
        let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
        for engine in [&vectorized, &closures] {
            engine.register_plugin(std::sync::Arc::new(probe_plugin(&probe_rows)));
            engine.register_plugin(std::sync::Arc::new(build_plugin(&build_rows)));
        }

        for (pi, pred) in predicate_shapes(&mut rng).into_iter().enumerate() {
            for (qi, plan) in join_plans_for(pred).into_iter().enumerate() {
                join_engines_agree(
                    &vectorized,
                    &closures,
                    &probe_records,
                    &build_records,
                    &plan,
                    &format!("binary join seed {seed} pred {pi} plan {qi}"),
                );
            }
        }
    }
}

#[test]
fn join_kernels_equal_closures_over_json_and_csv() {
    let dir = std::env::temp_dir().join(format!("proteus_join_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for seed in 0..CASES / 4 {
        let mut rng = StdRng::seed_from_u64(0x20_1F + seed);
        let probe_rows = random_rows(&mut rng);
        let build_rows = random_build_rows(&mut rng);
        let probe_records = to_records(&probe_rows);
        let build_records = build_to_records(&build_rows);

        let t_json = dir.join(format!("t_{seed}.json"));
        writers::write_json(&t_json, &probe_records, true).unwrap();
        let o_json = dir.join(format!("o_{seed}.json"));
        writers::write_json(&o_json, &build_records, true).unwrap();
        let t_csv = dir.join(format!("t_{seed}.csv"));
        writers::write_csv(&t_csv, &probe_records, &schema(), '|').unwrap();
        let o_csv = dir.join(format!("o_{seed}.csv"));
        writers::write_csv(&o_csv, &build_records, &build_schema(), '|').unwrap();

        for format in ["json", "csv"] {
            // Skipping off for the same reason as the binary join suite.
            let vectorized =
                QueryEngine::new(EngineConfig::without_caching().with_morsel_skipping(false));
            let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
            for engine in [&vectorized, &closures] {
                if format == "json" {
                    engine.register_json("t", &t_json).unwrap();
                    engine.register_json("o", &o_json).unwrap();
                } else {
                    engine
                        .register_csv("t", &t_csv, schema(), CsvOptions::default())
                        .unwrap();
                    engine
                        .register_csv("o", &o_csv, build_schema(), CsvOptions::default())
                        .unwrap();
                }
            }
            for (pi, pred) in predicate_shapes(&mut rng).into_iter().enumerate() {
                for (qi, plan) in join_plans_for(pred).into_iter().enumerate() {
                    join_engines_agree(
                        &vectorized,
                        &closures,
                        &probe_records,
                        &build_records,
                        &plan,
                        &format!("{format} join seed {seed} pred {pi} plan {qi}"),
                    );
                }
            }
        }
    }
}

#[test]
fn join_fallback_split_agrees_with_closures() {
    // A nested join: the outer probe side is itself a join output, so its
    // keys cannot resolve to typed scan slots and fall back to closure
    // extraction, while the inner join (and the outer build side) stay on
    // the kernel tier — both tiers run inside one plan and must agree with
    // the closure-only engine and the interpreter.
    let mut rng = StdRng::seed_from_u64(0x5111);
    let probe_rows = random_rows(&mut rng);
    let build_rows = random_build_rows(&mut rng);
    let probe_records = to_records(&probe_rows);
    let build_records = build_to_records(&build_rows);

    let vectorized = QueryEngine::new(EngineConfig::without_caching());
    let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
    for engine in [&vectorized, &closures] {
        engine.register_plugin(std::sync::Arc::new(probe_plugin(&probe_rows)));
        engine.register_plugin(std::sync::Arc::new(build_plugin(&build_rows)));
    }

    let inner = LogicalPlan::scan("o", "o", Schema::empty()).join(
        LogicalPlan::scan("t", "t", Schema::empty()),
        Expr::path("o.ok").eq(Expr::path("t.k")),
        JoinKind::Inner,
    );
    let plan = proteus::algebra::rewrite::rewrite(
        LogicalPlan::scan("o", "o2", Schema::empty())
            .join(
                inner,
                Expr::path("o2.ok").eq(Expr::path("t.k")),
                JoinKind::Inner,
            )
            .reduce(vec![
                ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
                ReduceSpec::new(Monoid::Sum, Expr::path("o.ov"), "total"),
            ]),
    );

    let fast = vectorized.execute_plan(plan.clone()).unwrap();
    let slow = closures.execute_plan(plan.clone()).unwrap();
    assert_eq!(fast.rows, slow.rows);
    let mut catalog = proteus::algebra::interp::MemoryCatalog::new();
    catalog.register("t", probe_records);
    catalog.register("o", build_records);
    let expected = proteus::algebra::interp::execute(&plan, &catalog).unwrap();
    assert_eq!(fast.rows, expected);
    // Inner join + outer build ran typed keys; the outer probe fell back.
    assert!(fast.metrics.join_kernel_rows > 0, "{}", fast.metrics);
    assert!(fast.metrics.join_fallback_rows > 0, "{}", fast.metrics);
    assert_eq!(slow.metrics.join_kernel_rows, 0);
}

#[test]
fn join_kernels_survive_parallel_execution() {
    // Multi-morsel sides so parallel workers genuinely run the kernel build
    // ingest, the ordered build merge, and the kernel probe.
    let probe_n = 8 * 1024_i64;
    let build_n = 5 * 1024_i64;
    let probe_rows: Vec<(i64, f64, String)> = (0..probe_n)
        .map(|i| (i % 700, (i % 97) as f64, format!("w{}", i % 5)))
        .collect();
    let build_rows: Vec<(i64, f64, String)> = (0..build_n)
        .map(|i| (i % 900, (i % 53) as f64, format!("w{}", i % 7)))
        .collect();

    let serial = QueryEngine::new(EngineConfig::without_caching());
    let parallel = QueryEngine::new(EngineConfig::without_caching().with_parallelism(4));
    for engine in [&serial, &parallel] {
        engine.register_plugin(std::sync::Arc::new(probe_plugin(&probe_rows)));
        engine.register_plugin(std::sync::Arc::new(build_plugin(&build_rows)));
    }

    for (label, plan) in [
        (
            "inner",
            LogicalPlan::scan("o", "o", Schema::empty())
                .join(
                    LogicalPlan::scan("t", "t", Schema::empty()),
                    Expr::path("o.ok").eq(Expr::path("t.k")),
                    JoinKind::Inner,
                )
                .reduce(vec![
                    ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
                    ReduceSpec::new(Monoid::Sum, Expr::path("o.ov"), "total"),
                    ReduceSpec::new(Monoid::Max, Expr::path("t.q"), "maxq"),
                ]),
        ),
        (
            "left-outer",
            LogicalPlan::scan("o", "o", Schema::empty())
                .join(
                    LogicalPlan::scan("t", "t", Schema::empty())
                        .select(Expr::path("t.k").lt(Expr::int(400))),
                    Expr::path("o.ok").eq(Expr::path("t.k")),
                    JoinKind::LeftOuter,
                )
                .reduce(vec![
                    ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
                    ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
                ]),
        ),
    ] {
        let plan = proteus::algebra::rewrite::rewrite(plan);
        let a = serial.execute_plan(plan.clone()).unwrap();
        let b = parallel.execute_plan(plan).unwrap();
        assert_eq!(a.rows, b.rows, "{label}: serial vs parallel join rows");
        assert!(a.metrics.join_kernel_rows > 0, "{label}: {}", a.metrics);
        assert_eq!(
            a.metrics.join_kernel_rows, b.metrics.join_kernel_rows,
            "{label}: kernel row counts must not depend on the worker count"
        );
        assert_eq!(a.metrics.join_fallback_rows, 0, "{label}: {}", a.metrics);
        assert_eq!(b.metrics.join_fallback_rows, 0, "{label}: {}", b.metrics);
        assert!(b.metrics.threads_used > 1, "{label}: {}", b.metrics);
    }
}
