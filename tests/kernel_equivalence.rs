//! Property tests for the vectorized predicate kernels at the engine level:
//! across the fig05–fig12 predicate shapes over binary-column, JSON and CSV
//! representations, a vectorized engine (kernels on, the default) must
//! return exactly the rows of a closure-only engine (`vectorized: false`)
//! and of the reference interpreter — and the metrics must prove the
//! kernels actually ran (`kernel_rows > 0`, zero per-tuple allocations).
//!
//! Offline build: the properties run over a deterministic seed sweep
//! (failing seeds are in the assertion messages), like the other
//! equivalence suites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use proteus::datagen::writers;
use proteus::plugins::binary::ColumnPlugin;
use proteus::prelude::*;
use proteus::storage::ColumnData;

const CASES: u64 = 16;

fn random_rows(rng: &mut StdRng) -> Vec<(i64, f64, String)> {
    let len = rng.gen_range(1usize..80);
    (0..len)
        .map(|_| {
            let k = rng.gen_range(0i64..50);
            let q = (rng.gen_range(0.0..100.0) * 4.0f64).round() / 4.0;
            let words = ["", "fox", "quick fox", "lazy dog", "zebra"];
            let c = words[rng.gen_range(0usize..words.len())].to_string();
            (k, q, c)
        })
        .collect()
}

fn to_records(rows: &[(i64, f64, String)]) -> Vec<Value> {
    rows.iter()
        .map(|(k, q, c)| {
            Value::record(vec![
                ("k", Value::Int(*k)),
                ("q", Value::Float(*q)),
                ("c", Value::Str(c.clone())),
            ])
        })
        .collect()
}

fn schema() -> Schema {
    Schema::from_pairs(vec![
        ("k", DataType::Int),
        ("q", DataType::Float),
        ("c", DataType::String),
    ])
}

/// The fig05–fig12 selection shapes: threshold selections (fig07/fig08),
/// multi-predicate conjunctions, computed predicates (fig05-style
/// expressions), string predicates, and group-bys under a selection
/// (fig11/fig12).
fn predicate_shapes(rng: &mut StdRng) -> Vec<Expr> {
    let t = rng.gen_range(0i64..55);
    let f = rng.gen_range(0.0f64..100.0);
    vec![
        Expr::path("t.k").lt(Expr::int(t)),
        Expr::path("t.k")
            .lt(Expr::int(t))
            .and(Expr::path("t.q").lt(Expr::float(f))),
        Expr::path("t.k")
            .lt(Expr::int(t))
            .and(Expr::path("t.q").gt(Expr::float(10.0)))
            .and(Expr::path("t.q").lt(Expr::float(90.0))),
        Expr::binary(
            proteus::algebra::BinaryOp::Mul,
            Expr::path("t.k"),
            Expr::int(2),
        )
        .lt(Expr::int(t)),
        Expr::path("t.c").eq(Expr::string("fox")),
        Expr::Contains {
            expr: Box::new(Expr::path("t.c")),
            needle: "ox".into(),
        },
        Expr::path("t.k")
            .gt(Expr::int(t))
            .or(Expr::path("t.q").lt(Expr::float(f))),
        // Mixed: kernel-eligible + closure-fallback conjuncts in one select.
        Expr::path("t.k").lt(Expr::int(t)).and(
            Expr::binary(
                proteus::algebra::BinaryOp::Mod,
                Expr::path("t.k"),
                Expr::int(3),
            )
            .eq(Expr::int(0)),
        ),
    ]
}

fn plans_for(pred: Expr) -> Vec<LogicalPlan> {
    let scan = || LogicalPlan::scan("t", "t", Schema::empty());
    vec![
        // fig07/08-style selection → count.
        scan().select(pred.clone()).reduce(vec![ReduceSpec::new(
            Monoid::Count,
            Expr::int(1),
            "cnt",
        )]),
        // fig05/06-style aggregates over the selection.
        scan().select(pred.clone()).reduce(vec![
            ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
            ReduceSpec::new(Monoid::Max, Expr::path("t.k"), "maxk"),
        ]),
        // The full scalar-monoid spread (vectorized aggregate kernels),
        // including a computed input and a closure-fallback division spec.
        scan().select(pred.clone()).reduce(vec![
            ReduceSpec::new(Monoid::Avg, Expr::path("t.q"), "avgq"),
            ReduceSpec::new(Monoid::Min, Expr::path("t.k"), "mink"),
            ReduceSpec::new(
                Monoid::Max,
                Expr::binary(
                    proteus::algebra::BinaryOp::Add,
                    Expr::path("t.q"),
                    Expr::path("t.k"),
                ),
                "maxqk",
            ),
            ReduceSpec::new(
                Monoid::Sum,
                Expr::binary(
                    proteus::algebra::BinaryOp::Div,
                    Expr::path("t.q"),
                    Expr::float(2.0),
                ),
                "halves",
            ),
        ]),
        // Boolean monoids over predicate-shaped inputs.
        scan().reduce(vec![
            ReduceSpec::new(Monoid::And, pred.clone(), "every"),
            ReduceSpec::new(Monoid::Or, pred.clone(), "some"),
            ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
        ]),
        // Reduce-level predicate (`SUM(x) WHERE p` folds into the kernel
        // mask pass).
        LogicalPlan::Reduce {
            input: Box::new(scan()),
            outputs: vec![
                ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
                ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
            ],
            predicate: Some(pred.clone()),
        },
        // fig11/12-style group-by under the selection.
        scan().select(pred.clone()).nest(
            vec![Expr::path("t.k")],
            vec!["key".into()],
            vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")],
        ),
        // Multi-key group-by (typed key ingest) with kernel aggregates.
        scan().select(pred.clone()).nest(
            vec![Expr::path("t.k"), Expr::path("t.c")],
            vec!["key".into(), "word".into()],
            vec![
                ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
                ReduceSpec::new(Monoid::Avg, Expr::path("t.q"), "avgq"),
                ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
            ],
        ),
        // Collection monoids (closure specs, parallel-safe tagged merge).
        scan().select(pred.clone()).reduce(vec![
            ReduceSpec::new(Monoid::List, Expr::path("t.k"), "all"),
            ReduceSpec::new(Monoid::Set, Expr::path("t.c"), "words"),
        ]),
        // Projection (collect) of the surviving rows.
        scan().select(pred),
    ]
}

fn reference(rows: &[Value], plan: &LogicalPlan) -> Vec<Value> {
    let mut catalog = proteus::algebra::interp::MemoryCatalog::new();
    catalog.register("t", rows.to_vec());
    proteus::algebra::interp::execute(plan, &catalog).unwrap()
}

fn engines_agree(
    vectorized: &QueryEngine,
    closures: &QueryEngine,
    records: &[Value],
    plan: &LogicalPlan,
    expect_kernels: bool,
    label: &str,
) {
    let plan = proteus::algebra::rewrite::rewrite(plan.clone());
    let fast = vectorized.execute_plan(plan.clone()).unwrap();
    let slow = closures.execute_plan(plan.clone()).unwrap();
    assert_eq!(fast.rows, slow.rows, "{label}: kernel vs closure rows");
    // Aggregating plans are also checked against the reference interpreter
    // (order-insensitively: group-by row order is engine-defined). Bare
    // collects only compare engine-vs-engine — the interpreter renders
    // bindings as nested records, a representation difference that predates
    // the kernels.
    if matches!(plan, LogicalPlan::Reduce { .. } | LogicalPlan::Nest { .. }) {
        let mut got = fast.rows.clone();
        let mut expected = reference(records, &plan);
        got.sort_by(|a, b| a.total_cmp(b));
        expected.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(got, expected, "{label}: kernel vs interpreter rows");
    }
    assert_eq!(
        slow.metrics.kernel_rows, 0,
        "{label}: closure engine must not engage kernels"
    );
    fn has_select(plan: &LogicalPlan) -> bool {
        matches!(plan, LogicalPlan::Select { .. }) || plan.children().iter().any(|c| has_select(c))
    }
    if expect_kernels && has_select(&plan) {
        assert!(
            fast.metrics.kernel_rows > 0,
            "{label}: kernels were not engaged (metrics: {})",
            fast.metrics
        );
    }
    assert_eq!(
        slow.metrics.agg_kernel_rows, 0,
        "{label}: closure engine must not engage aggregate kernels"
    );
    // Whenever the vectorized engine moved output specs off the closure
    // fold, the aggregate kernels must report the folded rows.
    if fast.metrics.agg_fallback_rows < slow.metrics.agg_fallback_rows {
        assert!(
            fast.metrics.agg_kernel_rows > 0,
            "{label}: aggregate kernels were not engaged (metrics: {})",
            fast.metrics
        );
    }
    assert_eq!(
        fast.metrics.binding_allocs, slow.metrics.binding_allocs,
        "{label}: vectorized path changed per-tuple allocation behavior"
    );
}

#[test]
fn kernels_equal_closures_over_binary_columns() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED + seed);
        let rows = random_rows(&mut rng);
        let records = to_records(&rows);
        let plugin = ColumnPlugin::from_pairs(
            "t",
            vec![
                (
                    "k".to_string(),
                    ColumnData::Int(rows.iter().map(|(k, _, _)| *k).collect()),
                ),
                (
                    "q".to_string(),
                    ColumnData::Float(rows.iter().map(|(_, q, _)| *q).collect()),
                ),
                (
                    "c".to_string(),
                    ColumnData::Str(rows.iter().map(|(_, _, c)| c.clone()).collect()),
                ),
            ],
        )
        .unwrap();
        let vectorized = QueryEngine::new(EngineConfig::without_caching());
        let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
        vectorized.register_plugin(std::sync::Arc::new(plugin.clone()));
        closures.register_plugin(std::sync::Arc::new(plugin));

        for (pi, pred) in predicate_shapes(&mut rng).into_iter().enumerate() {
            for (qi, plan) in plans_for(pred).into_iter().enumerate() {
                engines_agree(
                    &vectorized,
                    &closures,
                    &records,
                    &plan,
                    true,
                    &format!("binary seed {seed} pred {pi} plan {qi}"),
                );
            }
        }
    }
}

#[test]
fn kernels_equal_closures_over_json_and_csv() {
    let dir = std::env::temp_dir().join(format!("proteus_kernel_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(0xF11E + seed);
        let rows = random_rows(&mut rng);
        let records = to_records(&rows);

        let json_path = dir.join(format!("t_{seed}.json"));
        writers::write_json(&json_path, &records, true).unwrap();
        let csv_path = dir.join(format!("t_{seed}.csv"));
        writers::write_csv(&csv_path, &records, &schema(), '|').unwrap();

        for format in ["json", "csv"] {
            let vectorized = QueryEngine::new(EngineConfig::without_caching());
            let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
            for engine in [&vectorized, &closures] {
                if format == "json" {
                    engine.register_json("t", &json_path).unwrap();
                } else {
                    engine
                        .register_csv("t", &csv_path, schema(), CsvOptions::default())
                        .unwrap();
                }
            }
            for (pi, pred) in predicate_shapes(&mut rng).into_iter().enumerate() {
                for (qi, plan) in plans_for(pred).into_iter().enumerate() {
                    engines_agree(
                        &vectorized,
                        &closures,
                        &records,
                        &plan,
                        true,
                        &format!("{format} seed {seed} pred {pi} plan {qi}"),
                    );
                }
            }
        }
    }
}

#[test]
fn kernels_survive_parallel_execution() {
    // Multi-morsel data so parallel workers genuinely run the kernel path.
    let rows = 8 * 1024_i64;
    let plugin = ColumnPlugin::from_pairs(
        "t",
        vec![
            (
                "k".to_string(),
                ColumnData::Int((0..rows).map(|i| i % 500).collect()),
            ),
            (
                "q".to_string(),
                ColumnData::Float((0..rows).map(|i| (i % 97) as f64).collect()),
            ),
        ],
    )
    .unwrap();
    let serial = QueryEngine::new(EngineConfig::without_caching());
    let parallel = QueryEngine::new(EngineConfig::without_caching().with_parallelism(4));
    serial.register_plugin(std::sync::Arc::new(plugin.clone()));
    parallel.register_plugin(std::sync::Arc::new(plugin));

    let plan = proteus::algebra::rewrite::rewrite(
        LogicalPlan::scan("t", "t", Schema::empty())
            .select(
                Expr::path("t.k")
                    .lt(Expr::int(250))
                    .and(Expr::path("t.q").lt(Expr::float(48.0))),
            )
            .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")]),
    );
    let a = serial.execute_plan(plan.clone()).unwrap();
    let b = parallel.execute_plan(plan).unwrap();
    assert_eq!(a.rows, b.rows);
    assert!(a.metrics.kernel_rows == rows as u64);
    assert!(b.metrics.kernel_rows == rows as u64);
    assert!(b.metrics.threads_used > 1);
    assert_eq!(a.metrics.binding_allocs, 0);
    assert_eq!(b.metrics.binding_allocs, 0);
}
