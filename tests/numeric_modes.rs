//! Contract tests for the per-query numeric modes.
//!
//! `NumericMode::Strict` (the default) keeps the kernel tier bit-exact
//! against the closure interpreter: every float fold runs in serial ingest
//! order, so the two engines must produce *identical* rows. Tests here pin
//! that with `assert_eq!` across seed sweeps and morsel-boundary row counts
//! (63/64/65/1023/1024/1025 — tails, exact morsels, and one-past).
//!
//! `NumericMode::Relaxed` permits reassociation: sums and averages fold in
//! `FOLD_LANES` independent lanes combined pairwise, which legally perturbs
//! the low bits of float totals. Relaxed results are compared against
//! strict with a 1e-9 *relative* envelope, with two documented caveats:
//!
//! * `Accumulator::finish` reports integral float sums as `Value::Int`, so
//!   reassociation can flip the output *type* (Float ↔ Int) when a sum
//!   lands exactly on an integer — comparisons coerce numerically.
//! * Signed zeros never survive the fold: the `+0.0` identity absorbs
//!   `-0.0` under IEEE addition in both modes, so `-0.0` inputs produce
//!   `+0.0` (or `Int(0)`) everywhere.
//!
//! The `simd_rows` metric asserts the lane path actually engaged under
//! relaxed (and never under strict); nullable columns come from the JSON
//! plug-in, whose numeric accessors preserve nulls into the packed bitmap.

use std::sync::Arc;

use proteus::datagen::writers;
use proteus::plugins::binary::ColumnPlugin;
use proteus::prelude::*;
use proteus::storage::ColumnData;

const ROW_COUNTS: &[i64] = &[63, 64, 65, 1023, 1024, 1025];
const SEEDS: &[i64] = &[1, 7, 1231];
const RELATIVE_EPSILON: f64 = 1e-9;

/// Numeric equivalence with the relaxed-mode envelope: `Int`/`Int` exact,
/// any numeric mix within 1e-9 relative error (covers the integral-sum
/// `Value::Int` flip from `Accumulator::finish`), containers recursively,
/// everything else exact.
fn value_approx_eq(a: &Value, b: &Value) -> bool {
    fn numeric(v: &Value) -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        _ if numeric(a).is_some() && numeric(b).is_some() => {
            let (x, y) = (numeric(a).unwrap(), numeric(b).unwrap());
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= RELATIVE_EPSILON * scale
        }
        (Value::Record(ra), Value::Record(rb)) => {
            ra.len() == rb.len()
                && ra
                    .iter()
                    .zip(rb.iter())
                    .all(|((na, va), (nb, vb))| na == nb && value_approx_eq(va, vb))
        }
        (Value::List(la), Value::List(lb)) => {
            la.len() == lb.len()
                && la
                    .iter()
                    .zip(lb.iter())
                    .all(|(va, vb)| value_approx_eq(va, vb))
        }
        _ => a == b,
    }
}

/// Order-insensitive multiset match under [`value_approx_eq`] (group-by
/// output order is an implementation detail).
fn rows_approx_eq(a: &[Value], b: &[Value]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut unmatched: Vec<&Value> = b.iter().collect();
    for row in a {
        match unmatched.iter().position(|c| value_approx_eq(row, c)) {
            Some(idx) => {
                unmatched.swap_remove(idx);
            }
            None => return false,
        }
    }
    unmatched.is_empty()
}

fn scalar(result: &proteus::core::QueryResult, name: &str) -> Value {
    match &result.rows[0] {
        Value::Record(rec) => rec.get(name).expect("output field").clone(),
        other => panic!("expected record row, got {other:?}"),
    }
}

/// Deterministic seed-swept fact table: a float measure with varied
/// fractions, a selective key, and a low-cardinality group column.
fn fact_table(rows: i64, seed: i64) -> ColumnPlugin {
    ColumnPlugin::from_pairs(
        "t",
        vec![
            (
                "k".to_string(),
                ColumnData::Int((0..rows).map(|i| (i * seed) % 41).collect()),
            ),
            (
                // Clustered so grouped ingest sees long same-key runs (the
                // run-folding path the relaxed lane fold rides on).
                "g".to_string(),
                ColumnData::Int((0..rows).map(|i| i / 16).collect()),
            ),
            (
                "q".to_string(),
                ColumnData::Float(
                    (0..rows)
                        .map(|i| ((i * seed) % 97) as f64 * 0.25 + ((i * seed) % 13) as f64 * 0.001)
                        .collect(),
                ),
            ),
        ],
    )
    .expect("fact table")
}

/// (strict, relaxed, closures) engines over the same plug-in, numeric
/// modes set explicitly.
fn engines(plugin: ColumnPlugin) -> (QueryEngine, QueryEngine, QueryEngine) {
    let plugin = Arc::new(plugin);
    let strict =
        QueryEngine::new(EngineConfig::without_caching().with_numeric_mode(NumericMode::Strict));
    let relaxed =
        QueryEngine::new(EngineConfig::without_caching().with_numeric_mode(NumericMode::Relaxed));
    let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
    for engine in [&strict, &relaxed, &closures] {
        engine.register_plugin(plugin.clone());
    }
    (strict, relaxed, closures)
}

fn scan_t() -> LogicalPlan {
    LogicalPlan::scan("t", "t", Schema::empty())
}

/// The reduce/group shapes every mode test sweeps. The bool marks shapes
/// whose relaxed path must report lane-processed rows (`simd_rows > 0`):
/// reassociating float folds. Min/Max stay order-insensitive-by-definition
/// and fold strictly in both modes.
fn shapes() -> Vec<(&'static str, bool, LogicalPlan)> {
    vec![
        (
            "sum",
            true,
            scan_t().reduce(vec![ReduceSpec::new(
                Monoid::Sum,
                Expr::path("t.q"),
                "total",
            )]),
        ),
        (
            "avg",
            true,
            scan_t().reduce(vec![ReduceSpec::new(
                Monoid::Avg,
                Expr::path("t.q"),
                "mean",
            )]),
        ),
        (
            "filtered-sum-minmax",
            true,
            scan_t()
                .select(Expr::path("t.k").lt(Expr::int(29)))
                .reduce(vec![
                    ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
                    ReduceSpec::new(Monoid::Min, Expr::path("t.q"), "lo"),
                    ReduceSpec::new(Monoid::Max, Expr::path("t.q"), "hi"),
                    ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
                ]),
        ),
        (
            "group-sum",
            true,
            scan_t().nest(
                vec![Expr::path("t.g")],
                vec!["g".into()],
                vec![
                    ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
                    ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
                ],
            ),
        ),
    ]
}

#[test]
fn strict_mode_is_bit_exact_against_closures() {
    for &rows in ROW_COUNTS {
        for &seed in SEEDS {
            let (strict, _, closures) = engines(fact_table(rows, seed));
            for (label, _, plan) in shapes() {
                let a = strict.execute_plan(plan.clone()).expect("strict");
                let b = closures.execute_plan(plan).expect("closures");
                assert_eq!(
                    a.rows, b.rows,
                    "strict diverged from closures: {label} @ rows={rows} seed={seed}"
                );
                assert_eq!(
                    a.metrics.simd_rows, 0,
                    "strict mode took a lane path: {label} @ rows={rows} seed={seed}"
                );
            }
        }
    }
}

#[test]
fn relaxed_mode_stays_within_epsilon_and_engages_lanes() {
    for &rows in ROW_COUNTS {
        for &seed in SEEDS {
            let (strict, relaxed, _) = engines(fact_table(rows, seed));
            for (label, lanes_expected, plan) in shapes() {
                let a = strict.execute_plan(plan.clone()).expect("strict");
                let b = relaxed.execute_plan(plan).expect("relaxed");
                assert!(
                    rows_approx_eq(&b.rows, &a.rows),
                    "relaxed outside the {RELATIVE_EPSILON} envelope: {label} @ rows={rows} \
                     seed={seed}\n strict  {:?}\n relaxed {:?}",
                    a.rows,
                    b.rows
                );
                if lanes_expected {
                    assert!(
                        b.metrics.simd_rows > 0,
                        "relaxed never took a lane loop: {label} @ rows={rows} seed={seed}"
                    );
                }
            }
        }
    }
}

#[test]
fn join_shapes_agree_across_modes() {
    // Fact ⋈ dimension on an integer key, counting and summing the
    // dimension measure: exercises batch hashing and the relaxed
    // multi-lane probe compares end to end.
    for &rows in &[65i64, 1024, 1025] {
        let fact = fact_table(rows, 7);
        let dim_rows = (rows / 4).max(8);
        let dim = ColumnPlugin::from_pairs(
            "d",
            vec![
                ("k".to_string(), ColumnData::Int((0..dim_rows).collect())),
                (
                    "w".to_string(),
                    ColumnData::Float((0..dim_rows).map(|i| (i % 89) as f64 * 1.5).collect()),
                ),
            ],
        )
        .expect("dim table");
        let (strict, relaxed, closures) = engines(fact);
        let dim = Arc::new(dim);
        for engine in [&strict, &relaxed, &closures] {
            engine.register_plugin(dim.clone());
        }
        let plan = LogicalPlan::scan("d", "d", Schema::empty())
            .join(
                scan_t(),
                Expr::path("d.k").eq(Expr::path("t.k")),
                JoinKind::Inner,
            )
            .reduce(vec![
                ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
                ReduceSpec::new(Monoid::Sum, Expr::path("d.w"), "total"),
            ]);
        let s = strict.execute_plan(plan.clone()).expect("strict");
        let c = closures.execute_plan(plan.clone()).expect("closures");
        let r = relaxed.execute_plan(plan).expect("relaxed");
        assert_eq!(s.rows, c.rows, "strict join diverged @ rows={rows}");
        assert!(
            rows_approx_eq(&r.rows, &s.rows),
            "relaxed join outside envelope @ rows={rows}:\n strict  {:?}\n relaxed {:?}",
            s.rows,
            r.rows
        );
        assert_eq!(
            scalar(&s, "cnt"),
            scalar(&r, "cnt"),
            "match counts must be exact"
        );
        assert!(
            r.metrics.simd_rows > 0,
            "relaxed join never took a lane loop"
        );
        assert_eq!(s.metrics.simd_rows, 0, "strict join took a lane path");
    }
}

/// Writes a JSON dataset with a nullable `qty`; `pattern` decides which
/// rows are null.
fn write_nullable_json(name: &str, rows: i64, pattern: impl Fn(i64) -> bool) -> std::path::PathBuf {
    let values: Vec<Value> = (0..rows)
        .map(|i| {
            let qty = if pattern(i) {
                Value::Null
            } else {
                Value::Float((i % 83) as f64 * 0.5 + (i % 7) as f64 * 0.01)
            };
            Value::record(vec![("id", Value::Int(i)), ("qty", qty)])
        })
        .collect();
    let path = std::env::temp_dir().join(format!("proteus_numeric_modes_test_{name}_{rows}.json"));
    writers::write_json(&path, &values, false).expect("write nullable json");
    path
}

fn json_engines(name: &str, path: &std::path::Path) -> (QueryEngine, QueryEngine, QueryEngine) {
    let strict =
        QueryEngine::new(EngineConfig::without_caching().with_numeric_mode(NumericMode::Strict));
    let relaxed =
        QueryEngine::new(EngineConfig::without_caching().with_numeric_mode(NumericMode::Relaxed));
    let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
    for engine in [&strict, &relaxed, &closures] {
        engine.register_json(name, path).expect("register json");
    }
    (strict, relaxed, closures)
}

#[test]
fn all_null_columns_aggregate_exactly_in_every_mode() {
    // Every `qty` is null: null-skipping aggregates see zero inputs, so the
    // sum is the monoid identity (reported as `Int(0)` by the integral-sum
    // rule) and the average is `Null` — bitwise identical across all three
    // engines and unaffected by reassociation. (An all-null field infers as
    // `DataType::Any`, so this shape exercises the generic null-preserving
    // accessors rather than the typed lane path.)
    let path = write_nullable_json("allnull", 1025, |_| true);
    let (strict, relaxed, closures) = json_engines("allnull", &path);
    let plan = LogicalPlan::scan("allnull", "r", Schema::empty()).reduce(vec![
        ReduceSpec::new(Monoid::Sum, Expr::path("r.qty"), "total"),
        ReduceSpec::new(Monoid::Avg, Expr::path("r.qty"), "mean"),
        ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
    ]);
    let s = strict.execute_plan(plan.clone()).expect("strict");
    let r = relaxed.execute_plan(plan.clone()).expect("relaxed");
    let c = closures.execute_plan(plan).expect("closures");
    assert_eq!(s.rows, c.rows, "strict vs closures on all-null column");
    assert_eq!(s.rows, r.rows, "relaxed must be exact on all-null column");
    assert_eq!(scalar(&s, "total"), Value::Int(0));
    assert_eq!(scalar(&s, "cnt"), Value::Int(1025));
}

#[test]
fn long_null_runs_fold_through_relaxed_lanes() {
    // The first rows are non-null (so inference types `qty` as Float and
    // the typed fill engages), then a >64-row null run produces fully-null
    // bitmap words — the packed `null_words()` skip path — followed by a
    // dense tail.
    let rows = 2 * 1024 + 63;
    let path = write_nullable_json("nullrun", rows, |i| (200..1400).contains(&i));
    let (strict, relaxed, closures) = json_engines("nullrun", &path);
    let plan = LogicalPlan::scan("nullrun", "r", Schema::empty()).reduce(vec![
        ReduceSpec::new(Monoid::Sum, Expr::path("r.qty"), "total"),
        ReduceSpec::new(Monoid::Avg, Expr::path("r.qty"), "mean"),
    ]);
    let s = strict.execute_plan(plan.clone()).expect("strict");
    let r = relaxed.execute_plan(plan.clone()).expect("relaxed");
    let c = closures.execute_plan(plan).expect("closures");
    assert_eq!(s.rows, c.rows, "strict vs closures on null-run column");
    assert!(
        rows_approx_eq(&r.rows, &s.rows),
        "relaxed outside envelope on null-run column:\n strict  {:?}\n relaxed {:?}",
        s.rows,
        r.rows
    );
    assert!(
        r.metrics.simd_rows > 0,
        "relaxed never took the nullable lane loop"
    );
    assert_eq!(s.metrics.simd_rows, 0, "strict took a lane path");
}

#[test]
fn signed_zeros_and_integral_sums_normalize_identically() {
    // Signed zeros cannot diverge between modes: the +0.0 fold identity
    // absorbs -0.0 under IEEE addition in the closure fold, the strict
    // kernel, and every relaxed lane alike. And a sum that lands exactly on
    // an integer is reported as `Value::Int` by `Accumulator::finish` in
    // every engine — both caveats pinned here.
    let rows = 1024i64;
    let neg_zeros = ColumnPlugin::from_pairs(
        "t",
        vec![
            (
                "g".to_string(),
                ColumnData::Int((0..rows).map(|i| i % 5).collect()),
            ),
            (
                "k".to_string(),
                ColumnData::Int((0..rows).map(|i| i % 41).collect()),
            ),
            (
                "q".to_string(),
                ColumnData::Float(
                    (0..rows)
                        .map(|i| if i % 2 == 0 { -0.0 } else { 0.5 })
                        .collect(),
                ),
            ),
        ],
    )
    .expect("signed-zero table");
    let (strict, relaxed, closures) = engines(neg_zeros);
    let plan = scan_t().reduce(vec![
        ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
        ReduceSpec::new(Monoid::Avg, Expr::path("t.q"), "mean"),
    ]);
    let s = strict.execute_plan(plan.clone()).expect("strict");
    let r = relaxed.execute_plan(plan.clone()).expect("relaxed");
    let c = closures.execute_plan(plan).expect("closures");
    assert_eq!(s.rows, c.rows);
    // 512 × 0.5 = 256 exactly: integral, so every engine reports Int.
    assert_eq!(scalar(&s, "total"), Value::Int(256));
    assert_eq!(scalar(&r, "total"), Value::Int(256));
    // The mean is a positive zero-free quotient; relaxed reassociation of
    // exact halves is still exact here.
    assert_eq!(scalar(&s, "mean"), Value::Float(0.25));
    assert_eq!(scalar(&r, "mean"), Value::Float(0.25));

    // All -0.0 inputs: the fold identity flips the sign in every engine,
    // and the integral rule turns the sum into Int(0).
    let all_neg = ColumnPlugin::from_pairs(
        "t",
        vec![
            (
                "g".to_string(),
                ColumnData::Int((0..rows).map(|i| i % 5).collect()),
            ),
            (
                "k".to_string(),
                ColumnData::Int((0..rows).map(|i| i % 41).collect()),
            ),
            (
                "q".to_string(),
                ColumnData::Float(vec![-0.0; rows as usize]),
            ),
        ],
    )
    .expect("negative-zero table");
    let (strict, relaxed, closures) = engines(all_neg);
    let plan = scan_t().reduce(vec![
        ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
        ReduceSpec::new(Monoid::Avg, Expr::path("t.q"), "mean"),
    ]);
    let s = strict.execute_plan(plan.clone()).expect("strict");
    let r = relaxed.execute_plan(plan.clone()).expect("relaxed");
    let c = closures.execute_plan(plan).expect("closures");
    assert_eq!(s.rows, c.rows);
    assert_eq!(s.rows, r.rows, "signed-zero outputs must agree bitwise");
    assert_eq!(scalar(&s, "total"), Value::Int(0));
    match scalar(&s, "mean") {
        Value::Float(f) => {
            assert_eq!(f, 0.0);
            assert!(f.is_sign_positive(), "identity absorbed the sign");
        }
        other => panic!("expected Float mean, got {other:?}"),
    }
}
