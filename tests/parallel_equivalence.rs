//! Property test for the morsel-parallel pipelines: across the fig05–fig12
//! query shapes (projections, selections, joins, unnest, group-bys) over
//! both the JSON and the binary representations, the parallel pipeline must
//! produce the same order-insensitive result set and the same monoid
//! aggregates as `parallelism = 1`.
//!
//! Scalar aggregates that sum floats are compared with a small relative
//! tolerance: partial accumulators merge in a different order than the
//! serial fold, which legally perturbs the low bits of float sums.

use proteus::prelude::*;
use proteus_bench::harness::{BenchSetup, QueryTemplate};

const PARALLELISM: usize = 4;

fn templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate::Projection { aggregates: 1 },
        QueryTemplate::Projection { aggregates: 2 },
        QueryTemplate::Projection { aggregates: 4 },
        QueryTemplate::Selection { predicates: 1 },
        QueryTemplate::Selection { predicates: 3 },
        QueryTemplate::Selection { predicates: 4 },
        QueryTemplate::Join { aggregates: 1 },
        QueryTemplate::Join { aggregates: 2 },
        QueryTemplate::Join { aggregates: 3 },
        QueryTemplate::Unnest,
        QueryTemplate::GroupBy { aggregates: 1 },
        QueryTemplate::GroupBy { aggregates: 2 },
    ]
}

/// Float-tolerant value equivalence: numerics within 1e-9 relative error,
/// everything else exact.
fn values_equivalent(a: &Value, b: &Value) -> bool {
    match (a.as_float(), b.as_float()) {
        (Ok(x), Ok(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => match (a, b) {
            (Value::Record(ra), Value::Record(rb)) => {
                ra.len() == rb.len()
                    && ra
                        .iter()
                        .zip(rb.iter())
                        .all(|((na, va), (nb, vb))| na == nb && values_equivalent(va, vb))
            }
            (Value::List(la), Value::List(lb)) => {
                la.len() == lb.len()
                    && la
                        .iter()
                        .zip(lb.iter())
                        .all(|(va, vb)| values_equivalent(va, vb))
            }
            _ => a.value_eq(b),
        },
    }
}

/// Order-insensitive row-set equivalence with float tolerance.
fn row_sets_equivalent(serial: &[Value], parallel: &[Value]) -> bool {
    if serial.len() != parallel.len() {
        return false;
    }
    let mut unmatched: Vec<&Value> = parallel.iter().collect();
    for row in serial {
        match unmatched
            .iter()
            .position(|candidate| values_equivalent(row, candidate))
        {
            Some(idx) => {
                unmatched.swap_remove(idx);
            }
            None => return false,
        }
    }
    unmatched.is_empty()
}

fn check_all_templates(serial: &QueryEngine, parallel: &QueryEngine, label: &str) {
    let setup_thresholds = [10i64, 37, 80, 10_000];
    for template in templates() {
        for threshold in setup_thresholds {
            let plan = template.plan(threshold);
            let a = serial.execute_plan(plan.clone()).unwrap();
            let b = parallel.execute_plan(plan).unwrap();
            assert!(
                row_sets_equivalent(&a.rows, &b.rows),
                "{label}: {} @ threshold {threshold}:\n serial   {:?}\n parallel {:?}",
                template.label(),
                a.rows,
                b.rows
            );
            assert_eq!(
                a.metrics.tuples_scanned,
                b.metrics.tuples_scanned,
                "{label}: {} scanned tuples diverged",
                template.label()
            );
        }
    }
}

#[test]
fn grouped_collection_sinks_match_serial_element_order() {
    // Grouped collection folds (list/bag/set) used to pin the whole query
    // serial. They now run morsel-parallel: every element carries its
    // morsel tag inside the group accumulator and the absorb step merges
    // tags in ascending order, so the parallel output must reproduce the
    // serial element order *exactly* — not just as a multiset.
    use proteus::plugins::binary::ColumnPlugin;
    use proteus::storage::ColumnData;
    use std::sync::Arc;

    let rows: i64 = 4 * 1024 + 137; // several full morsels plus a tail
    let plugin = Arc::new(
        ColumnPlugin::from_pairs(
            "seq",
            vec![
                (
                    "g".to_string(),
                    ColumnData::Int((0..rows).map(|i| i % 7).collect()),
                ),
                ("v".to_string(), ColumnData::Int((0..rows).collect())),
                (
                    // Low-cardinality payload so Set actually deduplicates.
                    "w".to_string(),
                    ColumnData::Str((0..rows).map(|i| format!("tag{}", i % 11)).collect()),
                ),
            ],
        )
        .unwrap(),
    );
    let serial = QueryEngine::new(EngineConfig::without_caching().with_parallelism(1));
    let parallel = QueryEngine::new(EngineConfig::without_caching().with_parallelism(PARALLELISM));
    serial.register_plugin(plugin.clone());
    parallel.register_plugin(plugin);

    let plan = LogicalPlan::scan("seq", "s", Schema::empty()).nest(
        vec![Expr::path("s.g")],
        vec!["g".into()],
        vec![
            ReduceSpec::new(Monoid::List, Expr::path("s.v"), "all"),
            ReduceSpec::new(Monoid::Bag, Expr::path("s.v"), "bag"),
            ReduceSpec::new(Monoid::Set, Expr::path("s.w"), "tags"),
            ReduceSpec::new(Monoid::Sum, Expr::path("s.v"), "total"),
        ],
    );
    let a = serial.execute_plan(plan.clone()).unwrap();
    let b = parallel.execute_plan(plan).unwrap();
    assert_eq!(b.metrics.threads_used, PARALLELISM as u64);
    // Integer payloads only, so bitwise equality — including the element
    // order inside every list/bag/set — is required, not just tolerated.
    assert!(
        row_sets_equivalent(&a.rows, &b.rows),
        "grouped collections diverged between serial and parallel"
    );
    for (serial_row, parallel_row) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(
            serial_row, parallel_row,
            "collection element order diverged from serial ingest order"
        );
    }
}

#[test]
fn parallel_pipelines_match_serial_over_json() {
    let setup = BenchSetup::tpch(0.02);
    let serial = setup.proteus_json(false);
    let parallel = {
        let engine =
            QueryEngine::new(EngineConfig::without_caching().with_parallelism(PARALLELISM));
        engine
            .register_json("lineitem", setup.dir.join("lineitem.json"))
            .unwrap();
        engine
            .register_json("orders", setup.dir.join("orders.json"))
            .unwrap();
        engine
            .register_json("orders_denorm", setup.dir.join("orders_denorm.json"))
            .unwrap();
        engine
    };
    check_all_templates(&serial, &parallel, "json");
}

#[test]
fn parallel_pipelines_match_serial_over_binary() {
    let setup = BenchSetup::tpch(0.02);
    let serial = setup.proteus_binary();
    let parallel = {
        let engine =
            QueryEngine::new(EngineConfig::without_caching().with_parallelism(PARALLELISM));
        engine
            .register_columns("lineitem", setup.dir.join("lineitem_cols"))
            .unwrap();
        engine
            .register_columns("orders", setup.dir.join("orders_cols"))
            .unwrap();
        engine
    };
    // The binary templates exclude Unnest (no nested collections in the
    // columnar representation); filter it out.
    for template in templates() {
        if template == QueryTemplate::Unnest {
            continue;
        }
        for threshold in [10i64, 37, 80, 10_000] {
            let plan = template.plan(threshold);
            let a = serial.execute_plan(plan.clone()).unwrap();
            let b = parallel.execute_plan(plan).unwrap();
            assert!(
                row_sets_equivalent(&a.rows, &b.rows),
                "binary: {} @ {threshold}",
                template.label()
            );
        }
    }
}
