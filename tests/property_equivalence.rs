//! Property-based tests: for randomly generated data and query parameters,
//! the generated Proteus pipelines, the reference interpreter and the
//! baseline engines must all return the same answers, and the JSON/CSV
//! structural-index access paths must agree with a full re-parse.
//!
//! The build environment is offline, so instead of proptest these properties
//! run over a deterministic seed sweep: each case derives its data and its
//! query parameter from a fixed-seed RNG, which keeps failures reproducible
//! (the failing seed is in the assertion message).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use proteus::baselines::{BaselineEngine, RowStoreEngine};
use proteus::datagen::writers;
use proteus::prelude::*;

const CASES: u64 = 24;

/// Random `(k, q, c)` rows mirroring the old proptest strategy: 1..60 rows,
/// small integer keys, two-decimal floats, short lowercase strings.
fn random_rows(rng: &mut StdRng) -> Vec<(i64, f64, String)> {
    let len = rng.gen_range(1usize..60);
    (0..len)
        .map(|_| {
            let k = rng.gen_range(0i64..50);
            let q = (rng.gen_range(0.0..1000.0) * 100.0f64).round() / 100.0;
            let c_len = rng.gen_range(0usize..=8);
            let c: String = (0..c_len)
                .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                .collect();
            (k, q, c)
        })
        .collect()
}

fn to_records(rows: &[(i64, f64, String)]) -> Vec<Value> {
    rows.iter()
        .map(|(k, q, c)| {
            Value::record(vec![
                ("k", Value::Int(*k)),
                ("q", Value::Float(*q)),
                ("c", Value::Str(c.clone())),
            ])
        })
        .collect()
}

fn schema() -> Schema {
    Schema::from_pairs(vec![
        ("k", DataType::Int),
        ("q", DataType::Float),
        ("c", DataType::String),
    ])
}

fn aggregate_plan(threshold: i64) -> LogicalPlan {
    LogicalPlan::scan("t", "t", Schema::empty())
        .select(Expr::path("t.k").lt(Expr::int(threshold)))
        .reduce(vec![
            ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
            ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
            ReduceSpec::new(Monoid::Max, Expr::path("t.k"), "maxk"),
        ])
}

fn reference(rows: &[Value], plan: &LogicalPlan) -> Vec<Value> {
    let mut catalog = proteus::algebra::interp::MemoryCatalog::new();
    catalog.register("t", rows.to_vec());
    proteus::algebra::interp::execute(plan, &catalog).unwrap()
}

fn case_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("proteus_prop_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generated_engine_equals_interpreter_over_json() {
    let dir = case_dir("json");
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA11CE + seed);
        let rows = random_rows(&mut rng);
        let threshold = rng.gen_range(0i64..60);
        let records = to_records(&rows);
        let plan = aggregate_plan(threshold);
        let expected = reference(&records, &plan);

        let path = dir.join(format!("t_{seed}.json"));
        writers::write_json(&path, &records, true).unwrap();

        let engine = QueryEngine::new(EngineConfig::without_caching());
        engine.register_json("t", &path).unwrap();
        let got = engine.execute_plan(plan).unwrap().rows;
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn generated_engine_equals_interpreter_over_csv() {
    let dir = case_dir("csv");
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC54 + seed);
        let rows = random_rows(&mut rng);
        let threshold = rng.gen_range(0i64..60);
        let records = to_records(&rows);
        let plan = aggregate_plan(threshold);
        let expected = reference(&records, &plan);

        let path = dir.join(format!("t_{seed}.csv"));
        writers::write_csv(&path, &records, &schema(), '|').unwrap();

        let engine = QueryEngine::new(EngineConfig::without_caching());
        engine
            .register_csv("t", &path, schema(), CsvOptions::default())
            .unwrap();
        let got = engine.execute_plan(plan).unwrap().rows;
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn caching_never_changes_results() {
    let dir = case_dir("cache");
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xCAC4E + seed);
        let rows = random_rows(&mut rng);
        let threshold = rng.gen_range(0i64..60);
        let records = to_records(&rows);
        let plan = aggregate_plan(threshold);

        let path = dir.join(format!("t_{seed}.json"));
        writers::write_json(&path, &records, false).unwrap();

        let engine = QueryEngine::with_defaults();
        engine.register_json("t", &path).unwrap();
        let first = engine.execute_plan(plan.clone()).unwrap().rows;
        let second = engine.execute_plan(plan).unwrap().rows;
        assert_eq!(
            first,
            reference(&records, &aggregate_plan(threshold)),
            "seed {seed}"
        );
        assert_eq!(first, second, "seed {seed}");
    }
}

#[test]
fn baseline_row_store_agrees_with_generated_engine() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBA5E + seed);
        let rows = random_rows(&mut rng);
        let threshold = rng.gen_range(0i64..60);
        let records = to_records(&rows);
        let plan = aggregate_plan(threshold);
        let expected = reference(&records, &plan);

        let mut baseline = RowStoreEngine::postgres_like();
        baseline.load("t", records);
        assert_eq!(baseline.execute(&plan).unwrap(), expected, "seed {seed}");
    }
}

#[test]
fn json_round_trip_preserves_values() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x707 + seed);
        let rows = random_rows(&mut rng);
        let records = to_records(&rows);
        for record in &records {
            let text = writers::value_to_json(record);
            let parsed = proteus::plugins::json::parse_json_value(text.as_bytes()).unwrap();
            assert!(parsed.value_eq(record), "seed {seed}: {parsed} != {record}");
        }
    }
}
