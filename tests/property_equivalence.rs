//! Property-based tests: for randomly generated data and query parameters,
//! the generated Proteus pipelines, the reference interpreter and the
//! baseline engines must all return the same answers, and the JSON/CSV
//! structural-index access paths must agree with a full re-parse.

use proptest::prelude::*;

use proteus::baselines::{BaselineEngine, RowStoreEngine};
use proteus::datagen::writers;
use proteus::prelude::*;

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, f64, String)>> {
    prop::collection::vec(
        (
            0i64..50,
            prop::num::f64::POSITIVE.prop_map(|f| (f % 1000.0 * 100.0).round() / 100.0),
            "[a-z]{0,8}",
        ),
        1..60,
    )
}

fn to_records(rows: &[(i64, f64, String)]) -> Vec<Value> {
    rows.iter()
        .map(|(k, q, c)| {
            Value::record(vec![
                ("k", Value::Int(*k)),
                ("q", Value::Float(*q)),
                ("c", Value::Str(c.clone())),
            ])
        })
        .collect()
}

fn schema() -> Schema {
    Schema::from_pairs(vec![
        ("k", DataType::Int),
        ("q", DataType::Float),
        ("c", DataType::String),
    ])
}

fn aggregate_plan(threshold: i64) -> LogicalPlan {
    LogicalPlan::scan("t", "t", Schema::empty())
        .select(Expr::path("t.k").lt(Expr::int(threshold)))
        .reduce(vec![
            ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt"),
            ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
            ReduceSpec::new(Monoid::Max, Expr::path("t.k"), "maxk"),
        ])
}

fn reference(rows: &[Value], plan: &LogicalPlan) -> Vec<Value> {
    let mut catalog = proteus::algebra::interp::MemoryCatalog::new();
    catalog.register("t", rows.to_vec());
    proteus::algebra::interp::execute(plan, &catalog).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_engine_equals_interpreter_over_json(rows in rows_strategy(), threshold in 0i64..60) {
        let records = to_records(&rows);
        let plan = aggregate_plan(threshold);
        let expected = reference(&records, &plan);

        let dir = std::env::temp_dir().join(format!("proteus_prop_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t_{}_{}.json", rows.len(), threshold));
        writers::write_json(&path, &records, true).unwrap();

        let engine = QueryEngine::new(EngineConfig::without_caching());
        engine.register_json("t", &path).unwrap();
        let got = engine.execute_plan(plan).unwrap().rows;
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn generated_engine_equals_interpreter_over_csv(rows in rows_strategy(), threshold in 0i64..60) {
        let records = to_records(&rows);
        let plan = aggregate_plan(threshold);
        let expected = reference(&records, &plan);

        let dir = std::env::temp_dir().join(format!("proteus_prop_csv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t_{}_{}.csv", rows.len(), threshold));
        writers::write_csv(&path, &records, &schema(), '|').unwrap();

        let engine = QueryEngine::new(EngineConfig::without_caching());
        engine.register_csv("t", &path, schema(), CsvOptions::default()).unwrap();
        let got = engine.execute_plan(plan).unwrap().rows;
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn caching_never_changes_results(rows in rows_strategy(), threshold in 0i64..60) {
        let records = to_records(&rows);
        let plan = aggregate_plan(threshold);

        let dir = std::env::temp_dir().join(format!("proteus_prop_cache_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t_{}_{}.json", rows.len(), threshold));
        writers::write_json(&path, &records, false).unwrap();

        let engine = QueryEngine::with_defaults();
        engine.register_json("t", &path).unwrap();
        let first = engine.execute_plan(plan.clone()).unwrap().rows;
        let second = engine.execute_plan(plan).unwrap().rows;
        prop_assert_eq!(&first, &reference(&records, &aggregate_plan(threshold)));
        prop_assert_eq!(first, second);
    }

    #[test]
    fn baseline_row_store_agrees_with_generated_engine(rows in rows_strategy(), threshold in 0i64..60) {
        let records = to_records(&rows);
        let plan = aggregate_plan(threshold);
        let expected = reference(&records, &plan);

        let mut baseline = RowStoreEngine::postgres_like();
        baseline.load("t", records);
        prop_assert_eq!(baseline.execute(&plan).unwrap(), expected);
    }

    #[test]
    fn json_round_trip_preserves_values(rows in rows_strategy()) {
        let records = to_records(&rows);
        for record in &records {
            let text = writers::value_to_json(record);
            let parsed = proteus::plugins::json::parse_json_value(text.as_bytes()).unwrap();
            prop_assert!(parsed.value_eq(record), "{} != {}", parsed, record);
        }
    }
}
