//! Property tests for zone-map morsel skipping at the engine level: a
//! skipping engine (the default) must return exactly the rows of a
//! skipping-disabled engine and of a closure-only engine, across binary,
//! JSON and CSV representations, serial and parallel execution,
//! word-boundary morsel sizes (63/64/65/1023/1024/1025), clustered and
//! shuffled layouts, nullable and all-null columns — while the metrics
//! prove that morsels really were skipped and short-circuited on the
//! clustered shapes.
//!
//! Offline build: deterministic seed sweep, like the other equivalence
//! suites (failing seeds are in the assertion messages).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use proteus::algebra::{BinaryOp, UnaryOp};
use proteus::datagen::writers;
use proteus::plugins::binary::ColumnPlugin;
use proteus::prelude::*;
use proteus::storage::ColumnData;

/// Word-boundary and morsel-boundary row counts, plus a multi-morsel size.
const SIZES: [usize; 7] = [63, 64, 65, 1023, 1024, 1025, 4 * 1024 + 17];

fn engines() -> (QueryEngine, QueryEngine, QueryEngine) {
    let skip_on = QueryEngine::new(EngineConfig::without_caching());
    let skip_off = QueryEngine::new(EngineConfig::without_caching().with_morsel_skipping(false));
    let closures = QueryEngine::new(EngineConfig::without_caching().with_vectorized(false));
    (skip_on, skip_off, closures)
}

/// Selection shapes over `t.k` (int) and `t.q` (float) exercising every
/// zone verdict: provably-empty, provably-full, ambiguous, negation,
/// disjunction, conjunction with a closure-fallback residual, and `Neq`
/// (whose null rule inverts the all-null verdict).
fn predicate_shapes(rows: usize, rng: &mut StdRng) -> Vec<Expr> {
    let n = rows as i64;
    let mid = rng.gen_range(0..n.max(1));
    vec![
        Expr::path("t.k").lt(Expr::int(n / 50)),
        Expr::path("t.k").lt(Expr::int(n / 2)),
        Expr::path("t.k").lt(Expr::int(-1)),
        Expr::path("t.k").lt(Expr::int(n + 1)),
        Expr::binary(BinaryOp::Ge, Expr::path("t.k"), Expr::int(mid)),
        Expr::path("t.k").eq(Expr::int(mid)),
        Expr::binary(BinaryOp::Neq, Expr::path("t.k"), Expr::int(mid)),
        Expr::int(mid).gt(Expr::path("t.k")),
        Expr::path("t.k")
            .lt(Expr::int(mid))
            .and(Expr::path("t.q").lt(Expr::float(48.0))),
        Expr::path("t.k").lt(Expr::int(n / 4)).or(Expr::binary(
            BinaryOp::Ge,
            Expr::path("t.k"),
            Expr::int(3 * n / 4),
        )),
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::path("t.k").lt(Expr::int(mid))),
        },
        // Kernel-eligible range conjunct + closure-fallback residual.
        Expr::path("t.k")
            .lt(Expr::int(n / 10))
            .and(Expr::binary(BinaryOp::Mod, Expr::path("t.k"), Expr::int(3)).eq(Expr::int(0))),
    ]
}

fn plans_for(pred: Expr) -> Vec<LogicalPlan> {
    let scan = || LogicalPlan::scan("t", "t", Schema::empty());
    vec![
        scan().select(pred.clone()).reduce(vec![ReduceSpec::new(
            Monoid::Count,
            Expr::int(1),
            "cnt",
        )]),
        scan().select(pred.clone()).reduce(vec![
            ReduceSpec::new(Monoid::Sum, Expr::path("t.q"), "total"),
            ReduceSpec::new(Monoid::Max, Expr::path("t.k"), "maxk"),
        ]),
        scan().select(pred.clone()).nest(
            vec![Expr::path("t.k")],
            vec!["key".into()],
            vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")],
        ),
        // Collect the surviving rows (bit-exact row order).
        scan().select(pred),
    ]
}

/// Executes `plan` on all three engines and asserts bit-exact agreement.
/// Returns the skip-on metrics so callers can assert skipping engaged.
fn agree(
    skip_on: &QueryEngine,
    skip_off: &QueryEngine,
    closures: &QueryEngine,
    plan: &LogicalPlan,
    label: &str,
) -> ExecutionMetrics {
    let plan = proteus::algebra::rewrite::rewrite(plan.clone());
    let on = skip_on.execute_plan(plan.clone()).unwrap();
    let off = skip_off.execute_plan(plan.clone()).unwrap();
    let slow = closures.execute_plan(plan).unwrap();
    assert_eq!(on.rows, off.rows, "{label}: skip-on vs skip-off rows");
    assert_eq!(on.rows, slow.rows, "{label}: skip-on vs closure rows");
    assert_eq!(
        off.metrics.morsels_skipped, 0,
        "{label}: skip-off engine must not skip"
    );
    on.metrics
}

/// Deterministic in-place shuffle (offline build: no OS entropy needed).
fn shuffle(values: &mut [i64], rng: &mut StdRng) {
    for i in (1..values.len()).rev() {
        values.swap(i, rng.gen_range(0..=i));
    }
}

fn binary_plugin(keys: &[i64]) -> ColumnPlugin {
    let payload: Vec<f64> = keys.iter().map(|&k| (k % 97) as f64).collect();
    ColumnPlugin::from_pairs(
        "t",
        vec![
            ("k".to_string(), ColumnData::Int(keys.to_vec())),
            ("q".to_string(), ColumnData::Float(payload)),
        ],
    )
    .unwrap()
}

#[test]
fn skipping_is_bit_exact_over_binary_columns() {
    for (si, rows) in SIZES.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0x5C1B + si as u64);
        let clustered: Vec<i64> = (0..rows as i64).collect();
        let mut shuffled = clustered.clone();
        shuffle(&mut shuffled, &mut rng);

        for (layout, keys) in [("clustered", &clustered), ("random", &shuffled)] {
            let plugin = binary_plugin(keys);
            let (skip_on, skip_off, closures) = engines();
            for engine in [&skip_on, &skip_off, &closures] {
                engine.register_plugin(std::sync::Arc::new(plugin.clone()));
            }
            let mut skipped_somewhere = false;
            let mut short_circuited_somewhere = false;
            for (pi, pred) in predicate_shapes(rows, &mut rng).into_iter().enumerate() {
                for (qi, plan) in plans_for(pred).into_iter().enumerate() {
                    let metrics = agree(
                        &skip_on,
                        &skip_off,
                        &closures,
                        &plan,
                        &format!("binary {layout} rows {rows} pred {pi} plan {qi}"),
                    );
                    skipped_somewhere |= metrics.morsels_skipped > 0;
                    short_circuited_somewhere |= metrics.morsels_short_circuited > 0;
                }
            }
            if layout == "clustered" {
                // The shape list always contains provably-empty and
                // provably-full predicates, so the clustered layout must
                // exercise both fast paths even at one-morsel sizes.
                assert!(
                    skipped_somewhere,
                    "clustered rows {rows}: no morsel was ever skipped"
                );
                assert!(
                    short_circuited_somewhere,
                    "clustered rows {rows}: no morsel was ever short-circuited"
                );
            }
        }
    }
}

#[test]
fn skipping_is_bit_exact_under_parallel_execution() {
    let rows = 8 * 1024usize;
    let keys: Vec<i64> = (0..rows as i64).collect();
    let plugin = binary_plugin(&keys);
    let serial = QueryEngine::new(EngineConfig::without_caching());
    let parallel = QueryEngine::new(EngineConfig::without_caching().with_parallelism(4));
    let parallel_off = QueryEngine::new(
        EngineConfig::without_caching()
            .with_parallelism(4)
            .with_morsel_skipping(false),
    );
    for engine in [&serial, &parallel, &parallel_off] {
        engine.register_plugin(std::sync::Arc::new(plugin.clone()));
    }
    let mut rng = StdRng::seed_from_u64(0x9A7);
    for (pi, pred) in predicate_shapes(rows, &mut rng).into_iter().enumerate() {
        for (qi, plan) in plans_for(pred).into_iter().enumerate() {
            let plan = proteus::algebra::rewrite::rewrite(plan);
            let a = serial.execute_plan(plan.clone()).unwrap();
            let b = parallel.execute_plan(plan.clone()).unwrap();
            let c = parallel_off.execute_plan(plan).unwrap();
            let label = format!("parallel pred {pi} plan {qi}");
            assert_eq!(a.rows, b.rows, "{label}: serial vs parallel skip-on");
            assert_eq!(b.rows, c.rows, "{label}: parallel skip-on vs skip-off");
            assert_eq!(
                a.metrics.morsels_skipped, b.metrics.morsels_skipped,
                "{label}: worker count must not change zone verdicts"
            );
        }
    }
    // The clustered 2% shape really skips under 4 workers.
    let plan = proteus::algebra::rewrite::rewrite(
        LogicalPlan::scan("t", "t", Schema::empty())
            .select(Expr::path("t.k").lt(Expr::int(rows as i64 / 50)))
            .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")]),
    );
    let result = parallel.execute_plan(plan).unwrap();
    assert!(result.metrics.morsels_skipped > 0);
    assert!(result.metrics.threads_used > 1);
}

/// Rows with nullable `k`/`q` (every third `k` missing) plus an all-null
/// column `n`, in record form for the JSON/CSV writers.
fn nullable_records(rows: usize, rng: &mut StdRng) -> Vec<Value> {
    (0..rows)
        .map(|i| {
            let k = if i % 3 == 0 {
                Value::Null
            } else {
                Value::Int(i as i64)
            };
            let q = if rng.gen_range(0u32..10) == 0 {
                Value::Null
            } else {
                Value::Float((i % 97) as f64)
            };
            Value::record(vec![("k", k), ("q", q), ("n", Value::Null)])
        })
        .collect()
}

fn nullable_schema() -> Schema {
    Schema::from_pairs(vec![
        ("k", DataType::Int),
        ("q", DataType::Float),
        ("n", DataType::Int),
    ])
}

#[test]
fn skipping_is_bit_exact_over_json_and_csv_with_nulls() {
    let dir = std::env::temp_dir().join(format!("proteus_zone_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (si, rows) in [65usize, 1024, 1025, 2 * 1024 + 63].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0x2E0 + si as u64);
        let records = nullable_records(rows, &mut rng);
        let json_path = dir.join(format!("t_{rows}.json"));
        writers::write_json(&json_path, &records, true).unwrap();
        let csv_path = dir.join(format!("t_{rows}.csv"));
        writers::write_csv(&csv_path, &records, &nullable_schema(), '|').unwrap();

        for format in ["json", "csv"] {
            let (skip_on, skip_off, closures) = engines();
            for engine in [&skip_on, &skip_off, &closures] {
                if format == "json" {
                    engine.register_json("t", &json_path).unwrap();
                } else {
                    engine
                        .register_csv("t", &csv_path, nullable_schema(), CsvOptions::default())
                        .unwrap();
                }
            }
            let mut shapes = predicate_shapes(rows, &mut rng);
            // All-null column shapes: `<` can never pass a null (NonePass),
            // `neq` passes every null (AllPass) — both verdicts must agree
            // with the kernels' null rules bit-exactly.
            shapes.push(Expr::path("t.n").lt(Expr::int(5)));
            shapes.push(Expr::binary(BinaryOp::Neq, Expr::path("t.n"), Expr::int(5)));
            shapes.push(Expr::Unary {
                op: UnaryOp::IsNull,
                expr: Box::new(Expr::path("t.k")),
            });
            for (pi, pred) in shapes.into_iter().enumerate() {
                for (qi, plan) in plans_for(pred).into_iter().enumerate() {
                    agree(
                        &skip_on,
                        &skip_off,
                        &closures,
                        &plan,
                        &format!("{format} rows {rows} pred {pi} plan {qi}"),
                    );
                }
            }
        }
    }
}

#[test]
fn derived_json_zone_maps_skip_and_short_circuit_sparse_tails() {
    // The JSON numeric accessors are null-preserving: a missing field or a
    // `null` token reads as `Value::Null` on the row-major path and lands a
    // bit in the typed column's null bitmap — a convention the derived zone
    // maps share by construction, because they observe the same fill. A
    // null tail therefore becomes all-null zones that no comparison can
    // match (provably skippable), and a constant non-null tail becomes
    // zones a covering comparison proves full (short-circuitable).
    let dir = std::env::temp_dir().join(format!("proteus_zone_null_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let rows = 2 * 1024 + 100;
    let records: Vec<Value> = (0..rows)
        .map(|i| {
            let n = if i < 1024 {
                Value::Int(i as i64)
            } else {
                Value::Int(1)
            };
            Value::record(vec![("n", n)])
        })
        .collect();
    let json_path = dir.join("t.json");
    writers::write_json(&json_path, &records, true).unwrap();
    let null_records: Vec<Value> = (0..rows)
        .map(|i| {
            let n = if i < 1024 {
                Value::Int(i as i64)
            } else {
                Value::Null
            };
            Value::record(vec![("n", n)])
        })
        .collect();
    let null_path = dir.join("t_null.json");
    writers::write_json(&null_path, &null_records, true).unwrap();

    let (skip_on, skip_off, closures) = engines();
    for engine in [&skip_on, &skip_off, &closures] {
        engine.register_json("t", &json_path).unwrap();
        engine.register_json("t_null", &null_path).unwrap();
    }
    // `n < 5`: ambiguous in the populated first zone, provably full in the
    // constant-one tail zones.
    let low = LogicalPlan::scan("t", "t", Schema::empty())
        .select(Expr::path("t.n").lt(Expr::int(5)))
        .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")]);
    let metrics = agree(&skip_on, &skip_off, &closures, &low, "constant-tail lt");
    assert!(
        metrics.morsels_short_circuited >= 2,
        "constant tail zones must short-circuit under `< 5` ({metrics})"
    );
    // `n > 5`: provably empty in the constant-one tail zones.
    let high = LogicalPlan::scan("t", "t", Schema::empty())
        .select(Expr::path("t.n").gt(Expr::int(5)))
        .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")]);
    let metrics = agree(&skip_on, &skip_off, &closures, &high, "constant-tail gt");
    assert!(
        metrics.morsels_skipped >= 2,
        "constant tail zones must be skipped under `> 5` ({metrics})"
    );
    // Null tails match no comparison at all: `< 5` skips them outright
    // (under the old missing-numeric-as-0 convention they were constant-zero
    // zones that short-circuited instead).
    let null_low = LogicalPlan::scan("t_null", "t", Schema::empty())
        .select(Expr::path("t.n").lt(Expr::int(5)))
        .reduce(vec![ReduceSpec::new(Monoid::Count, Expr::int(1), "cnt")]);
    let metrics = agree(&skip_on, &skip_off, &closures, &null_low, "null-tail lt");
    assert!(
        metrics.morsels_skipped >= 2,
        "all-null tail zones must be skipped under `< 5` ({metrics})"
    );
}
